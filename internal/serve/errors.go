package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"flashps/internal/cache"
)

// ErrorCode is a stable, machine-readable error class carried in every
// /v1 error envelope. Codes are part of the wire contract (docs/API.md);
// new codes may be added but existing ones never change meaning.
type ErrorCode string

const (
	// CodeInvalidRequest covers malformed JSON, unknown modes/mask types,
	// and any other request-shape problem. Not retryable.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeTemplateNotFound means the referenced template has not been
	// prepared (or was deleted). Not retryable until re-prepared.
	CodeTemplateNotFound ErrorCode = "template_not_found"
	// CodeOverloaded means admission control rejected or shed the request;
	// retrying after backoff is expected to succeed.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeDeadlineExceeded means the request's deadline expired before a
	// result was produced; the job is evicted at the next step boundary.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeCanceled means the client abandoned the request (connection
	// closed / context canceled) before completion.
	CodeCanceled ErrorCode = "canceled"
	// CodeTemplatePinned means a DELETE hit a pinned template; unpin it
	// first. Not retryable. (v1.1)
	CodeTemplatePinned ErrorCode = "template_pinned"
	// CodeCacheFull means the template store could not admit the entry:
	// every resident template is pinned (or the template exceeds the RAM
	// budget) and no spill tier is configured. Retryable after unpinning
	// or deleting templates. (v1.1)
	CodeCacheFull ErrorCode = "cache_full"
	// CodeInternal is any server-side failure not covered above.
	CodeInternal ErrorCode = "internal"
)

// APIError is the structured error returned by the serving plane. It is
// both the Go error type flowing out of SubmitEdit/Prepare and the wire
// form inside ErrorEnvelope.
type APIError struct {
	Code      ErrorCode `json:"code"`
	Message   string    `json:"message"`
	Retryable bool      `json:"retryable"`
}

// Error implements error.
func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Is matches any *APIError with the same code, so
// errors.Is(err, ErrOverloaded) works across distinct instances.
func (e *APIError) Is(target error) bool {
	t, ok := target.(*APIError)
	return ok && t.Code == e.Code
}

// HTTPStatus maps the code onto its HTTP status.
func (e *APIError) HTTPStatus() int {
	switch e.Code {
	case CodeInvalidRequest:
		return http.StatusBadRequest
	case CodeTemplateNotFound:
		return http.StatusNotFound
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	case CodeTemplatePinned:
		return http.StatusConflict
	case CodeCacheFull:
		return http.StatusInsufficientStorage
	default:
		return http.StatusInternalServerError
	}
}

// ErrorEnvelope is the wire form of every /v1 error response body:
//
//	{"error": {"code": "...", "message": "...", "retryable": bool}}
type ErrorEnvelope struct {
	Error *APIError `json:"error"`
}

// ErrOverloaded is returned when admission control rejects (or load
// shedding evicts) a request. Kept as a sentinel for errors.Is.
var ErrOverloaded = &APIError{
	Code:      CodeOverloaded,
	Message:   "overloaded: request rejected by admission control",
	Retryable: true,
}

// apiErrorf builds an *APIError with a formatted message.
func apiErrorf(code ErrorCode, retryable bool, format string, args ...interface{}) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...), Retryable: retryable}
}

// asAPIError coerces any error into an *APIError so every failure leaves
// the server with a stable code; unrecognized errors become internal.
func asAPIError(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return apiErrorf(CodeDeadlineExceeded, true, "%v", err)
	case errors.Is(err, context.Canceled):
		return apiErrorf(CodeCanceled, false, "%v", err)
	case errors.Is(err, cache.ErrNotFound):
		return apiErrorf(CodeTemplateNotFound, false, "%v", err)
	case errors.Is(err, cache.ErrPinned):
		return apiErrorf(CodeTemplatePinned, false, "%v", err)
	case errors.Is(err, cache.ErrCacheFull):
		return apiErrorf(CodeCacheFull, true, "%v", err)
	}
	return apiErrorf(CodeInternal, false, "%v", err)
}
