package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flashps/internal/batching"
	"flashps/internal/faults"
	"flashps/internal/perfmodel"
)

// decodeEnvelope asserts the response body is a structured error envelope
// and returns it.
func decodeEnvelope(t *testing.T, res *http.Response) *APIError {
	t.Helper()
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not an envelope: %v\n%s", err, body)
	}
	if env.Error == nil || env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code/message: %s", body)
	}
	return env.Error
}

// TestErrorEnvelopeTable asserts every /v1 endpoint's status code and
// structured envelope for each failure class — the API contract of
// docs/API.md.
func TestErrorEnvelopeTable(t *testing.T) {
	s := newTestServer(t, 1)
	prepareTemplate(t, s, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	editBody := func(tpl uint64, mode, maskType string) string {
		b, _ := json.Marshal(EditRequestAPI{
			TemplateID: tpl, Seed: 1, Mode: mode,
			Mask: MaskSpec{Type: maskType, Ratio: 0.2, Seed: 2},
		})
		return string(b)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   ErrorCode
		retryable  bool
	}{
		{"edits bad JSON", "POST", "/v1/edits", "{", http.StatusBadRequest, CodeInvalidRequest, false},
		{"edits unknown template", "POST", "/v1/edits", editBody(99, "", "ratio"), http.StatusNotFound, CodeTemplateNotFound, false},
		{"edits unknown mode", "POST", "/v1/edits", editBody(1, "wat", "ratio"), http.StatusBadRequest, CodeInvalidRequest, false},
		{"edits unknown mask type", "POST", "/v1/edits", editBody(1, "", "bogus"), http.StatusBadRequest, CodeInvalidRequest, false},
		{"edits wrong method", "GET", "/v1/edits", "", http.StatusMethodNotAllowed, CodeInvalidRequest, false},
		{"templates bad JSON", "POST", "/v1/templates", "{", http.StatusBadRequest, CodeInvalidRequest, false},
		{"templates wrong method", "PUT", "/v1/templates", "", http.StatusMethodNotAllowed, CodeInvalidRequest, false},
		{"delete bad id", "DELETE", "/v1/templates/abc", "", http.StatusBadRequest, CodeInvalidRequest, false},
		{"delete unknown id", "DELETE", "/v1/templates/999", "", http.StatusNotFound, CodeTemplateNotFound, false},
		{"delete wrong method", "GET", "/v1/templates/1", "", http.StatusMethodNotAllowed, CodeInvalidRequest, false},
		{"stats wrong method", "POST", "/v1/stats", "", http.StatusMethodNotAllowed, CodeInvalidRequest, false},
		{"list bad limit", "GET", "/v1/templates?limit=-1", "", http.StatusBadRequest, CodeInvalidRequest, false},
		{"list bad offset", "GET", "/v1/templates?offset=x", "", http.StatusBadRequest, CodeInvalidRequest, false},
		{"pin bad id", "POST", "/v1/templates/abc/pin", "", http.StatusBadRequest, CodeInvalidRequest, false},
		{"pin unknown id", "POST", "/v1/templates/999/pin", "", http.StatusNotFound, CodeTemplateNotFound, false},
		{"unpin unknown id", "DELETE", "/v1/templates/999/pin", "", http.StatusNotFound, CodeTemplateNotFound, false},
		{"pin wrong method", "GET", "/v1/templates/1/pin", "", http.StatusMethodNotAllowed, CodeInvalidRequest, false},
		{"cache stats wrong method", "POST", "/v1/cache/stats", "", http.StatusMethodNotAllowed, CodeInvalidRequest, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := do(tc.method, tc.path, tc.body)
			if res.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", res.StatusCode, tc.wantStatus)
			}
			ae := decodeEnvelope(t, res)
			if ae.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", ae.Code, tc.wantCode)
			}
			if ae.Retryable != tc.retryable {
				t.Fatalf("retryable = %v, want %v", ae.Retryable, tc.retryable)
			}
		})
	}
}

// TestOverloadedEnvelope asserts admission rejections carry the overloaded
// envelope with retryable=true and HTTP 429.
func TestOverloadedEnvelope(t *testing.T) {
	slow := testModel
	slow.Name = "slow-envelope"
	slow.Steps = 40
	// Slow each denoising step through the fault injector so the single
	// worker saturates deterministically, however fast the kernels are.
	inj := faults.New(1)
	inj.SetDelay(faults.StepStage, time.Millisecond, 0)
	s, err := New(Config{
		Model: slow, Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 1, MaxQueue: 1,
		Policy: batching.MaskAware, Seed: 42, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	prepareTemplate(t, s, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		ae     *APIError
	}
	const n = 8
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			body, _ := json.Marshal(EditRequestAPI{
				TemplateID: 1, Seed: uint64(i),
				// Identical ratios so shedding never applies and rejections
				// surface deterministically.
				Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: uint64(i)},
			})
			res, err := http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{}
				return
			}
			r := result{status: res.StatusCode}
			if res.StatusCode != http.StatusOK {
				var env ErrorEnvelope
				_ = json.NewDecoder(res.Body).Decode(&env)
				r.ae = env.Error
			}
			res.Body.Close()
			results <- r
		}()
	}
	var sawOK, saw429 bool
	for i := 0; i < n; i++ {
		r := <-results
		switch r.status {
		case http.StatusOK:
			sawOK = true
		case http.StatusTooManyRequests:
			saw429 = true
			if r.ae == nil || r.ae.Code != CodeOverloaded || !r.ae.Retryable {
				t.Fatalf("429 envelope = %+v", r.ae)
			}
		}
	}
	if !sawOK || !saw429 {
		t.Fatalf("expected a mix of 200 and 429 (ok=%v overloaded=%v)", sawOK, saw429)
	}
}

// TestTemplateLifecycle exercises GET /v1/templates, idempotent POST, and
// DELETE /v1/templates/{id} over the tiered (host+disk) store.
func TestTemplateLifecycle(t *testing.T) {
	s, err := New(Config{
		Model: testModel, Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 2,
		Policy: batching.MaskAware, Seed: 42,
		CacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(req PrepareRequest) PrepareResponse {
		t.Helper()
		b, _ := json.Marshal(req)
		res, err := http.Post(ts.URL+"/v1/templates", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("prepare status %d", res.StatusCode)
		}
		var out PrepareResponse
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	list := func() []TemplateInfo {
		t.Helper()
		res, err := http.Get(ts.URL + "/v1/templates")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var out TemplateListResponse
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Templates
	}

	if got := list(); len(got) != 0 {
		t.Fatalf("fresh server lists %v", got)
	}

	first := post(PrepareRequest{TemplateID: 7, ImageSeed: 7, Prompt: "p"})
	if first.Reused || first.CacheBytes <= 0 {
		t.Fatalf("first prepare: %+v", first)
	}
	entries := list()
	if len(entries) != 1 || entries[0].TemplateID != 7 || entries[0].Bytes <= 0 {
		t.Fatalf("list after prepare: %+v", entries)
	}
	if entries[0].Tier != "host+disk" {
		t.Fatalf("tier = %q, want host+disk", entries[0].Tier)
	}

	// Idempotent re-prepare: no recompute, same cache.
	second := post(PrepareRequest{TemplateID: 7, ImageSeed: 999, Prompt: "different"})
	if !second.Reused || second.CacheBytes != first.CacheBytes {
		t.Fatalf("re-prepare not idempotent: %+v", second)
	}

	// Delete invalidates both tiers.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/templates/7", nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var del DeleteTemplateResponse
	if err := json.NewDecoder(res.Body).Decode(&del); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !del.Deleted || del.TemplateID != 7 {
		t.Fatalf("delete: %d %+v", res.StatusCode, del)
	}
	if got := list(); len(got) != 0 {
		t.Fatalf("list after delete: %+v", got)
	}

	// Editing the deleted template is now a 404.
	b, _ := json.Marshal(EditRequestAPI{
		TemplateID: 7, Seed: 1, Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 1},
	})
	res, err = http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("edit after delete = %d, want 404", res.StatusCode)
	}
	if ae := decodeEnvelope(t, res); ae.Code != CodeTemplateNotFound {
		t.Fatalf("code = %q", ae.Code)
	}

	// Deleting again is a 404 (nothing left to invalidate).
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/templates/7", nil)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete = %d", res.StatusCode)
	}
	res.Body.Close()
}

// TestPinLifecycleAndCacheStats exercises the v1.1 surface: pin/unpin
// endpoints, the pinned/hits list fields, the template_pinned delete
// conflict, and GET /v1/cache/stats.
func TestPinLifecycleAndCacheStats(t *testing.T) {
	s, err := New(Config{
		Model: testModel, Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 2,
		Policy: batching.MaskAware, Seed: 42,
		CacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	prepareTemplate(t, s, 1)
	prepareTemplate(t, s, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(method, path string, wantStatus int) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != wantStatus {
			t.Fatalf("%s %s = %d, want %d", method, path, res.StatusCode, wantStatus)
		}
		return res
	}

	// Pin template 1 and observe it in the list.
	res := do(http.MethodPost, "/v1/templates/1/pin", http.StatusOK)
	var pin PinResponse
	if err := json.NewDecoder(res.Body).Decode(&pin); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if pin.TemplateID != 1 || !pin.Pinned {
		t.Fatalf("pin response: %+v", pin)
	}
	res = do(http.MethodGet, "/v1/templates", http.StatusOK)
	var listed TemplateListResponse
	if err := json.NewDecoder(res.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if listed.Total != 2 || len(listed.Templates) != 2 {
		t.Fatalf("list: %+v", listed)
	}
	if !listed.Templates[0].Pinned || listed.Templates[1].Pinned {
		t.Fatalf("pinned flags: %+v", listed.Templates)
	}

	// Deleting a pinned template is a 409 conflict, not a delete.
	res = do(http.MethodDelete, "/v1/templates/1", http.StatusConflict)
	if ae := decodeEnvelope(t, res); ae.Code != CodeTemplatePinned {
		t.Fatalf("delete pinned code = %q, want %q", ae.Code, CodeTemplatePinned)
	}

	// Unpin, then the delete goes through.
	do(http.MethodDelete, "/v1/templates/1/pin", http.StatusOK).Body.Close()
	do(http.MethodDelete, "/v1/templates/1", http.StatusOK).Body.Close()

	// Cache stats reports both tiers with sane host-tier numbers.
	res = do(http.MethodGet, "/v1/cache/stats", http.StatusOK)
	var cs CacheStatsResponse
	if err := json.NewDecoder(res.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(cs.Tiers) != 2 || cs.Tiers[0].Tier != "host" || cs.Tiers[1].Tier != "disk" {
		t.Fatalf("cache stats tiers: %+v", cs.Tiers)
	}
	host := cs.Tiers[0]
	if host.CapacityBytes <= 0 || host.Entries != 1 || host.UsedBytes <= 0 {
		t.Fatalf("host tier stats: %+v", host)
	}
}

// TestTemplateListPagination asserts the ?limit/offset window and the
// Total count of GET /v1/templates.
func TestTemplateListPagination(t *testing.T) {
	s := newTestServer(t, 1)
	for id := uint64(1); id <= 3; id++ {
		prepareTemplate(t, s, id)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) TemplateListResponse {
		t.Helper()
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, res.StatusCode)
		}
		var out TemplateListResponse
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	full := get("/v1/templates")
	if full.Total != 3 || len(full.Templates) != 3 {
		t.Fatalf("unpaginated list: %+v", full)
	}
	page := get("/v1/templates?limit=2")
	if page.Total != 3 || len(page.Templates) != 2 || page.Templates[0].TemplateID != 1 {
		t.Fatalf("limit=2: %+v", page)
	}
	page = get("/v1/templates?limit=2&offset=2")
	if page.Total != 3 || len(page.Templates) != 1 || page.Templates[0].TemplateID != 3 {
		t.Fatalf("limit=2&offset=2: %+v", page)
	}
	if page.Limit != 2 || page.Offset != 2 {
		t.Fatalf("echoed window: %+v", page)
	}
	page = get("/v1/templates?offset=9")
	if page.Total != 3 || len(page.Templates) != 0 {
		t.Fatalf("offset past end: %+v", page)
	}
}

// TestCacheFullEnvelope pins the 507 cache_full contract: with no spill
// tier and every resident template pinned, preparing another template has
// nowhere to land.
func TestCacheFullEnvelope(t *testing.T) {
	// Phase 1: learn the template-cache footprint for the test model.
	probe := newTestServer(t, 1)
	probed, err := probe.Prepare(PrepareRequest{TemplateID: 1, ImageSeed: 1, Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	size := probed.CacheBytes

	// Phase 2: a RAM budget that fits exactly one template, no spill dir.
	var s *Server
	s, err = New(Config{
		Model: testModel, Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 2,
		Policy: batching.MaskAware, Seed: 42,
		CacheBudgetBytes: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	prepareTemplate(t, s, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/templates/1/pin", nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pin = %d", res.StatusCode)
	}

	body, _ := json.Marshal(PrepareRequest{TemplateID: 2, ImageSeed: 2, Prompt: "p"})
	res, err = http.Post(ts.URL+"/v1/templates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("prepare over pinned-full cache = %d, want 507", res.StatusCode)
	}
	ae := decodeEnvelope(t, res)
	if ae.Code != CodeCacheFull || !ae.Retryable {
		t.Fatalf("envelope = %+v, want retryable cache_full", ae)
	}
}

// TestAPIErrorIsMatchesByCode pins the errors.Is contract used by clients
// of the Go API.
func TestAPIErrorIsMatchesByCode(t *testing.T) {
	err := apiErrorf(CodeOverloaded, true, "queue full")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("overloaded errors should match ErrOverloaded by code")
	}
	if errors.Is(apiErrorf(CodeInternal, false, "x"), ErrOverloaded) {
		t.Fatal("internal error matched ErrOverloaded")
	}
	if asAPIError(errors.New("plain")).Code != CodeInternal {
		t.Fatal("plain errors should coerce to internal")
	}
}
