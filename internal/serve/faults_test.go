package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"flashps/internal/batching"
	"flashps/internal/faults"
	"flashps/internal/perfmodel"
)

// faultServer builds a started server around the toy model with the given
// overrides, for fault-injection scenarios.
func faultServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Model.Name == "" {
		cfg.Model = testModel
	}
	cfg.Profile = perfmodel.SD21Paper
	cfg.Policy = batching.MaskAware
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	return s
}

// metricValue scrapes the server's public registry and returns the value
// of a plain (unlabeled) counter/gauge sample, or -1 when absent.
func metricValue(t testing.TB, s *Server, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		return -1
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s value %q: %v", name, m[1], err)
	}
	return v
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v: %s", d, msg)
}

// TestWorkerCrashRetriesOnAlternateReplica is the headline fault drill:
// kill one of two engine loops mid-batch and require every in-flight
// request to complete anyway, re-executed on the surviving replica within
// the retry budget, with the crash visible in the counters and /healthz
// recovering after the restart delay.
func TestWorkerCrashRetriesOnAlternateReplica(t *testing.T) {
	inj := faults.New(7)
	inj.Fail(faults.WorkerCrash(0), 1)
	inj.SetDelay(faults.StepStage, 2*time.Millisecond, 0)
	s := faultServer(t, Config{
		Workers: 2, MaxBatch: 4, PreWorkers: 2, PostWorkers: 2,
		WorkerRestartDelay: 100 * time.Millisecond,
		Faults:             inj,
	})
	prepareTemplate(t, s, 1)

	const n = 8
	var wg sync.WaitGroup
	resps := make([]EditResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = s.SubmitEdit(context.Background(), EditRequestAPI{
				TemplateID: 1, Seed: uint64(i),
				Mask: MaskSpec{Type: "ratio", Ratio: 0.1 + 0.05*float64(i%5), Seed: uint64(i)},
			})
		}()
		time.Sleep(3 * time.Millisecond) // spread routing across both replicas
	}
	wg.Wait()

	retried := 0
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d failed despite retry budget: %v", i, errs[i])
		}
		if resps[i].StepsComputed != testModel.Steps {
			t.Fatalf("request %d computed %d steps", i, resps[i].StepsComputed)
		}
		if resps[i].Retries > 0 {
			retried++
			if resps[i].Worker == 0 {
				t.Fatalf("request %d retried onto the crashed replica mid-downtime", i)
			}
		}
	}
	if retried == 0 {
		t.Fatal("worker 0 crashed but no request reports a retry")
	}
	if v := metricValue(t, s, "flashps_worker_restarts_total"); v != 1 {
		t.Fatalf("worker_restarts_total = %v, want 1", v)
	}
	if v := metricValue(t, s, "flashps_retries_total"); v < 1 {
		t.Fatalf("retries_total = %v, want >= 1", v)
	}
	waitUntil(t, 2*time.Second, func() bool {
		h := s.Health()
		for _, alive := range h.WorkerAlive {
			if !alive {
				return false
			}
		}
		return h.Status == "ok"
	}, "health did not recover after worker restart")
}

// TestHealthDegradedWhileWorkerDown pins the liveness contract: with the
// only replica crashed and not yet restarted, routing fails retryably,
// /healthz reports 503 "degraded" with per-worker liveness, and the
// replica comes back after the restart delay.
func TestHealthDegradedWhileWorkerDown(t *testing.T) {
	inj := faults.New(7)
	inj.Fail(faults.WorkerCrash(0), 1)
	s := faultServer(t, Config{
		Workers: 1, MaxBatch: 2,
		WorkerRestartDelay: 400 * time.Millisecond,
		Faults:             inj,
	})
	prepareTemplate(t, s, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The lone replica crashes on admission; the retry has nowhere to go.
	_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 1, Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 1},
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("crash with no alternate replica: err = %v, want overloaded", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || !ae.Retryable {
		t.Fatalf("downtime error should be retryable: %+v", ae)
	}

	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("down replica: healthz = %d %q, want 503 degraded", res.StatusCode, h.Status)
	}
	if len(h.WorkerAlive) != 1 || h.WorkerAlive[0] {
		t.Fatalf("worker_alive = %v, want [false]", h.WorkerAlive)
	}

	waitUntil(t, 2*time.Second, func() bool { return s.Health().Status == "ok" },
		"replica did not restart")

	// The restarted replica serves again.
	if _, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 2, Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 2},
	}); err != nil {
		t.Fatalf("edit after restart: %v", err)
	}
}

// TestCacheLoadFailureDegradesToFull: a failed template-cache load must not
// kill a flashps-mode request — it falls back to full compute with the
// degradation recorded on the response and in the counters.
func TestCacheLoadFailureDegradesToFull(t *testing.T) {
	inj := faults.New(7)
	inj.Fail(faults.CacheLoad, 1)
	s := faultServer(t, Config{Workers: 1, MaxBatch: 2, Faults: inj})
	prepareTemplate(t, s, 1)

	resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 1, Mode: "flashps",
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 1},
	})
	if err != nil {
		t.Fatalf("degraded request should still complete: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != degradeCacheFailed {
		t.Fatalf("degradation not recorded: %+v", resp)
	}
	if resp.StepsComputed != testModel.Steps {
		t.Fatalf("degraded full mode computed %d steps", resp.StepsComputed)
	}
	if v := metricValue(t, s, "flashps_degraded_total"); v != 1 {
		t.Fatalf("degraded_total = %v, want 1", v)
	}

	// Fail budget consumed: the next request serves the cached path cleanly.
	resp, err = s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 2, Mode: "flashps",
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 2},
	})
	if err != nil || resp.Degraded {
		t.Fatalf("after budget: err=%v degraded=%v", err, resp.Degraded)
	}
	if v := metricValue(t, s, "flashps_degraded_total"); v != 1 {
		t.Fatalf("degraded_total moved to %v", v)
	}
}

// TestCacheLoadTimeoutDegrades: a slow (not failed) cache load beyond
// CacheLoadTimeout also degrades, with its own reason.
func TestCacheLoadTimeoutDegrades(t *testing.T) {
	inj := faults.New(7)
	inj.SetDelay(faults.CacheLoad, 20*time.Millisecond, 0)
	s := faultServer(t, Config{
		Workers: 1, MaxBatch: 2,
		CacheLoadTimeout: 5 * time.Millisecond,
		Faults:           inj,
	})
	prepareTemplate(t, s, 1)
	resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 1, Mode: "flashps",
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.DegradedReason != degradeCacheTimeout {
		t.Fatalf("slow load not degraded: %+v", resp)
	}
	// Explicit full mode never reports degradation — there is no cached
	// path to lose.
	resp, err = s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 2, Mode: "full",
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 2},
	})
	if err != nil || resp.Degraded {
		t.Fatalf("full mode degraded: err=%v %+v", err, resp)
	}
}

// TestDeadlineExceededEvictsMidDenoise: an expired deadline_ms returns 504
// with the deadline_exceeded envelope while the abandoned job is evicted
// at the next step boundary, releasing its admission slot.
func TestDeadlineExceededEvictsMidDenoise(t *testing.T) {
	inj := faults.New(7)
	inj.SetDelay(faults.StepStage, 30*time.Millisecond, 0) // ≥150ms per request
	s := faultServer(t, Config{Workers: 1, MaxBatch: 2, Faults: inj})
	prepareTemplate(t, s, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(EditRequestAPI{
		TemplateID: 1, Seed: 1, DeadlineMS: 40,
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 1},
	})
	start := time.Now()
	res, err := http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", res.StatusCode)
	}
	ae := decodeEnvelope(t, res)
	if ae.Code != CodeDeadlineExceeded || !ae.Retryable {
		t.Fatalf("envelope = %+v", ae)
	}
	// The response must arrive at deadline expiry, not after the full
	// denoise (~150ms with the injected step delay).
	if el := time.Since(start); el > 120*time.Millisecond {
		t.Fatalf("deadline response took %v", el)
	}
	if v := metricValue(t, s, "flashps_deadline_exceeded_total"); v != 1 {
		t.Fatalf("deadline_exceeded_total = %v, want 1", v)
	}
	// Eviction at the step boundary releases the admission slot.
	waitUntil(t, 2*time.Second, func() bool {
		for _, d := range s.Health().QueueDepths {
			if d != 0 {
				return false
			}
		}
		return true
	}, "abandoned job not evicted")

	// Same contract through the Go API.
	_, serr := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 2, DeadlineMS: 40,
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 2},
	})
	var dae *APIError
	if !errors.As(serr, &dae) || dae.Code != CodeDeadlineExceeded {
		t.Fatalf("SubmitEdit deadline err = %v", serr)
	}
	if echo := dae.Error(); echo == "" {
		t.Fatal("empty error text")
	}
}

// TestCancelConcurrentEditsNoLeak cancels 50 concurrent in-flight edits
// mid-denoise and asserts the pipeline drains every one of them with no
// leaked goroutines (run under -race via `make faults`).
func TestCancelConcurrentEditsNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	inj := faults.New(7)
	inj.SetDelay(faults.StepStage, 10*time.Millisecond, 0)
	s, err := New(Config{
		Model: testModel, Profile: perfmodel.SD21Paper,
		Workers: 2, MaxBatch: 4, PreWorkers: 2, PostWorkers: 2,
		Policy: batching.MaskAware, Seed: 42,
		Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	prepareTemplate(t, s, 1)

	ctx, cancel := context.WithCancel(context.Background())
	const n = 50
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.SubmitEdit(ctx, EditRequestAPI{
				TemplateID: 1, Seed: uint64(i),
				Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: uint64(i)},
			})
		}()
	}
	time.Sleep(25 * time.Millisecond) // let the batch get mid-denoise
	cancel()
	wg.Wait()

	canceled := 0
	for i, err := range errs {
		if err == nil {
			continue // finished before the cancel — fine
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeCanceled {
			t.Fatalf("request %d: %v, want canceled", i, err)
		}
		canceled++
	}
	if canceled == 0 {
		t.Fatal("no request was actually in flight at cancel time")
	}

	// Every abandoned job must be evicted and its admission slot released.
	waitUntil(t, 5*time.Second, func() bool {
		for _, d := range s.Health().QueueDepths {
			if d != 0 {
				return false
			}
		}
		return true
	}, "canceled jobs not evicted")

	s.Close()
	waitUntil(t, 5*time.Second, func() bool {
		return runtime.NumGoroutine() <= baseline+3
	}, "goroutines leaked after cancel storm")
}

// TestShedLargestMaskFirst: under sustained overload the server sacrifices
// the largest-mask-ratio outstanding work for smaller work, and only
// rejects blindly when no outstanding job is larger than the newcomer.
func TestShedLargestMaskFirst(t *testing.T) {
	inj := faults.New(7)
	inj.SetDelay(faults.StepStage, 25*time.Millisecond, 0) // keep jobs in flight
	s := faultServer(t, Config{
		Workers: 1, MaxBatch: 4, MaxQueue: 2,
		Faults: inj,
	})
	prepareTemplate(t, s, 1)

	depth := func() int { return s.Health().QueueDepths[0] }
	submit := func(ratio float64, seed uint64, out chan<- error) {
		_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
			TemplateID: 1, Seed: seed,
			Mask: MaskSpec{Type: "ratio", Ratio: ratio, Seed: seed},
		})
		out <- err
	}

	big := make(chan error, 1)
	go submit(0.9, 1, big)
	waitUntil(t, time.Second, func() bool { return depth() == 1 }, "big job not admitted")
	mid := make(chan error, 1)
	go submit(0.8, 2, mid)
	waitUntil(t, time.Second, func() bool { return depth() == 2 }, "mid job not admitted")

	// Larger than everything outstanding → nothing to shed → rejected.
	huge := make(chan error, 1)
	go submit(0.95, 3, huge)
	if err := <-huge; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized newcomer: %v, want overloaded rejection", err)
	}

	// Smaller than the 0.9 job → that job is shed, newcomer is served.
	small := make(chan error, 1)
	go submit(0.05, 4, small)
	if err := <-big; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("big job should have been shed: %v", err)
	}
	if err := <-small; err != nil {
		t.Fatalf("small job should be served after shed: %v", err)
	}
	if err := <-mid; err != nil {
		t.Fatalf("mid job should survive: %v", err)
	}
	if v := metricValue(t, s, `flashps_requests_total{outcome="shed"}`); v < 1 {
		// The shed outcome is labeled; scrape it with its label set.
		var buf bytes.Buffer
		_ = s.Registry().WritePrometheus(&buf)
		t.Fatalf("shed outcome not counted:\n%s", buf.String())
	}

	// The core's exported decision log is the contract for overload
	// behavior — assert through it rather than poking worker internals.
	// Submission order (big, mid, huge, small) fixes the KindPlace order,
	// so the log tells us which request ID each role got.
	var places, sheds, rejects []batching.Decision
	for _, d := range s.Decisions() {
		switch d.Kind {
		case batching.KindPlace:
			places = append(places, d)
		case batching.KindShed:
			sheds = append(sheds, d)
		case batching.KindReject:
			rejects = append(rejects, d)
		}
	}
	if len(places) != 4 {
		t.Fatalf("placed %d requests, want 4: %v", len(places), places)
	}
	bigID, hugeID := places[0].Request, places[2].Request
	if len(rejects) != 1 || rejects[0].Request != hugeID {
		t.Fatalf("reject log %v, want exactly one reject of request %d", rejects, hugeID)
	}
	if len(sheds) != 1 || sheds[0].Request != bigID {
		t.Fatalf("shed log %v, want exactly one shed of request %d", sheds, bigID)
	}
}

// TestFaultCountersExposedAtZero: all four resilience counters are
// registered eagerly so dashboards see them before the first incident.
func TestFaultCountersExposedAtZero(t *testing.T) {
	s := newTestServer(t, 1)
	for _, name := range []string{
		"flashps_retries_total",
		"flashps_degraded_total",
		"flashps_worker_restarts_total",
		"flashps_deadline_exceeded_total",
	} {
		if v := metricValue(t, s, name); v != 0 {
			t.Fatalf("%s = %v, want 0 on a fresh server", name, v)
		}
	}
}
