package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"flashps/internal/faults"
	"flashps/internal/fleet"
)

// TestFleetAffinityRoutingAndEndpoint drives the affinity router with
// replica-local staging armed: a template-skewed workload must pay at most
// one staging pass per (replica, template), the stagings counter must
// reflect those passes, and GET /v1/fleet's snapshot must report the
// router, the tracked template sets, and the staged sets.
func TestFleetAffinityRoutingAndEndpoint(t *testing.T) {
	s := faultServer(t, Config{
		Workers: 2, MaxBatch: 4,
		Router:          "affinity",
		StagedTemplates: 4,
	})
	prepareTemplate(t, s, 1)
	prepareTemplate(t, s, 2)
	for i := 0; i < 12; i++ {
		tpl := uint64(i%2 + 1)
		if _, err := s.SubmitEdit(context.Background(), EditRequestAPI{
			TemplateID: tpl, Prompt: "edit", Seed: 3,
			Mask: MaskSpec{Type: "ratio", Ratio: 0.25, Seed: 2},
		}); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}

	stagings := metricValue(t, s, "flashps_replica_stagings_total")
	if stagings < 1 {
		t.Fatalf("flashps_replica_stagings_total = %v, want ≥ 1", stagings)
	}
	// 2 templates × 2 replicas bounds the distinct (replica, template)
	// pairs; the affinity router should not re-stage within the run.
	if stagings > 4 {
		t.Fatalf("flashps_replica_stagings_total = %v, want ≤ 4 (one pass per replica-template pair)", stagings)
	}

	fl := s.Fleet()
	if fl.Router != "affinity" {
		t.Fatalf("fleet router = %q, want affinity", fl.Router)
	}
	if len(fl.Replicas) != 2 {
		t.Fatalf("fleet reports %d replicas, want 2", len(fl.Replicas))
	}
	var tracked, staged int
	for _, r := range fl.Replicas {
		if r.State != "active" || !r.Alive {
			t.Fatalf("replica %d: state=%q alive=%v, want active/true", r.ID, r.State, r.Alive)
		}
		tracked += len(r.Templates)
		staged += len(r.StagedTemplates)
	}
	if tracked == 0 {
		t.Fatal("no replica tracks any template after 12 routed edits")
	}
	if staged != int(stagings) {
		t.Fatalf("staged template entries = %d, stagings counter = %v; staging and the snapshot disagree", staged, stagings)
	}

	// The serve health report carries the same per-replica detail.
	h := s.Health()
	if len(h.Replicas) != 2 {
		t.Fatalf("health reports %d replicas, want 2", len(h.Replicas))
	}
	if h.Status != "ok" {
		t.Fatalf("health status = %q, want ok", h.Status)
	}
}

// TestFleetAdmissionRejects pins the live admission stage: the token
// bucket turns an over-burst request away with a retryable overloaded
// error, and a deadline below the service floor is rejected up front,
// non-retryably, before any routing work.
func TestFleetAdmissionRejects(t *testing.T) {
	t.Run("rate_limited", func(t *testing.T) {
		s := faultServer(t, Config{
			Workers: 1, MaxBatch: 4,
			Router:    "least-loaded",
			AdmitRate: 0.001, AdmitBurst: 1,
		})
		prepareTemplate(t, s, 1)
		if _, err := s.SubmitEdit(context.Background(), EditRequestAPI{
			TemplateID: 1, Prompt: "edit", Seed: 3,
			Mask: MaskSpec{Type: "ratio", Ratio: 0.25, Seed: 2},
		}); err != nil {
			t.Fatalf("first edit should consume the burst token, got %v", err)
		}
		_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
			TemplateID: 1, Prompt: "edit", Seed: 3,
			Mask: MaskSpec{Type: "ratio", Ratio: 0.25, Seed: 2},
		})
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeOverloaded || !ae.Retryable {
			t.Fatalf("second edit: got %v, want retryable %s", err, CodeOverloaded)
		}
		var rejects int
		for _, e := range s.ctrl.Events() {
			if e.Kind == fleet.EventReject && e.Reason == "rate_limited" {
				rejects++
			}
		}
		if rejects != 1 {
			t.Fatalf("controller logged %d rate_limited rejects, want 1", rejects)
		}
	})
	t.Run("deadline_infeasible", func(t *testing.T) {
		s := faultServer(t, Config{
			Workers: 1, MaxBatch: 4,
			AdmitMinServiceMS: 50,
		})
		prepareTemplate(t, s, 1)
		_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
			TemplateID: 1, Prompt: "edit", Seed: 3, DeadlineMS: 10,
			Mask: MaskSpec{Type: "ratio", Ratio: 0.25, Seed: 2},
		})
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeDeadlineExceeded || ae.Retryable {
			t.Fatalf("got %v, want non-retryable %s", err, CodeDeadlineExceeded)
		}
		// A feasible deadline still passes the floor.
		if _, err := s.SubmitEdit(context.Background(), EditRequestAPI{
			TemplateID: 1, Prompt: "edit", Seed: 3, DeadlineMS: 5000,
			Mask: MaskSpec{Type: "ratio", Ratio: 0.25, Seed: 2},
		}); err != nil {
			t.Fatalf("feasible deadline rejected: %v", err)
		}
	})
}

// TestFleetAutoscaleWallClock runs the SLO-driven autoscaler on the
// wall-clock driver: a queue pile-up on a single active replica triggers
// the saturation breach and activates the standby replica; once the burst
// drains and the fleet idles, the standby is drained back Down.
func TestFleetAutoscaleWallClock(t *testing.T) {
	inj := faults.New(7)
	inj.SetDelay(faults.StepStage, 15*time.Millisecond, 0) // ≥75ms per request
	s := faultServer(t, Config{
		Workers: 1, MaxReplicas: 2, MaxBatch: 1,
		Router: "least-loaded",
		Autoscale: fleet.AutoscaleConfig{
			Enabled: true, Interval: 0.02,
			UpTicks: 1, IdleTicks: 2, Cooldown: 1, Min: 1,
		},
		Faults: inj,
	})
	prepareTemplate(t, s, 1)

	activeReplicas := func() int {
		n := 0
		for _, r := range s.Fleet().Replicas {
			if r.State == "active" {
				n++
			}
		}
		return n
	}
	if got := activeReplicas(); got != 1 {
		t.Fatalf("fleet starts with %d active replicas, want 1 (standby Down)", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if _, err := s.SubmitEdit(context.Background(), EditRequestAPI{
				TemplateID: 1, Prompt: "edit", Seed: seed,
				Mask: MaskSpec{Type: "ratio", Ratio: 0.25, Seed: 2},
			}); err != nil {
				t.Errorf("edit: %v", err)
			}
		}(uint64(i))
	}
	waitUntil(t, 5*time.Second, func() bool { return activeReplicas() == 2 },
		"queue pile-up never scaled the standby replica up")
	wg.Wait()
	waitUntil(t, 5*time.Second, func() bool {
		fl := s.Fleet()
		active, draining := 0, 0
		for _, r := range fl.Replicas {
			switch r.State {
			case "active":
				active++
			case "draining":
				draining++
			}
		}
		return active == 1 && draining == 0
	}, "idle fleet never drained back to the Min=1 floor")

	var ups, downs int
	for _, e := range s.ctrl.Events() {
		switch e.Kind {
		case fleet.EventScaleUp:
			ups++
		case fleet.EventScaleDown:
			downs++
		}
	}
	if ups == 0 || downs == 0 {
		t.Fatalf("scale events: %d up, %d down; want both > 0", ups, downs)
	}
}
