package serve

import (
	"encoding/json"
	"testing"
)

// FuzzMaskSpecBuild ensures arbitrary mask specs never panic: they either
// rasterize to a valid mask or return an error.
func FuzzMaskSpecBuild(f *testing.F) {
	f.Add("rect", 0, 0, 3, 3, 0.0, uint64(0))
	f.Add("ellipse", -2, -2, 9, 9, 0.0, uint64(1))
	f.Add("ratio", 0, 0, 0, 0, 0.25, uint64(2))
	f.Add("full", 0, 0, 0, 0, 0.0, uint64(3))
	f.Add("???", 1, 2, 3, 4, 1.5, uint64(4))
	f.Fuzz(func(t *testing.T, typ string, y0, x0, y1, x1 int, ratio float64, seed uint64) {
		spec := MaskSpec{Type: typ, Y0: y0, X0: x0, Y1: y1, X1: x1, Ratio: ratio, Seed: seed}
		m, err := spec.Build(6, 6)
		if err != nil {
			return
		}
		if m == nil || m.H != 6 || m.W != 6 {
			t.Fatalf("Build returned malformed mask %v for %+v", m, spec)
		}
		if r := m.Ratio(); r < 0 || r > 1 {
			t.Fatalf("mask ratio %g out of range", r)
		}
	})
}

// FuzzMaskSpecJSON ensures arbitrary JSON never panics the MaskSpec
// unmarshaler and that valid round trips are stable.
func FuzzMaskSpecJSON(f *testing.F) {
	f.Add([]byte(`{"type":"rect","y0":1,"x0":1,"y1":3,"x1":3}`))
	f.Add([]byte(`{"type":"ratio","ratio":0.2,"seed":7}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec MaskSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		re, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var again MaskSpec
		if err := json.Unmarshal(re, &again); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzDeserializeLatent ensures arbitrary bytes never panic the latent
// wire-format parser.
func FuzzDeserializeLatent(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := deserializeLatent(data)
		if m == nil {
			return
		}
		if m.R <= 0 || m.C <= 0 || len(m.Data) != m.R*m.C {
			t.Fatalf("malformed matrix from deserialize: %v", m)
		}
	})
}
