package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
)

func mathFloat32bits(v float32) uint32     { return math.Float32bits(v) }
func mathFloat32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Handler returns the HTTP API:
//
//	POST /v1/templates — prepare a template (PrepareRequest → PrepareResponse)
//	POST /v1/edits     — serve an edit (EditRequestAPI → EditResponse)
//	GET  /v1/stats     — live statistics (Stats)
//	GET  /healthz      — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	mux.HandleFunc("/v1/templates", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req PrepareRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.Prepare(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/edits", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var req EditRequestAPI
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.SubmitEdit(r.Context(), req)
		if errors.Is(err, ErrOverloaded) {
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(s.Metrics()))
	})
	return mux
}

// Metrics renders the live statistics in the Prometheus text exposition
// format, for scraping alongside the JSON /v1/stats endpoint.
func (s *Server) Metrics() string {
	st := s.Snapshot()
	var b strings.Builder
	emit := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP flashps_%s %s\n# TYPE flashps_%s gauge\nflashps_%s %g\n",
			name, help, name, name, v)
	}
	emit("requests_completed", "Requests served to completion", float64(st.Completed))
	emit("latency_mean_ms", "Mean end-to-end request latency", st.MeanTotalMS)
	emit("latency_p95_ms", "P95 end-to-end request latency", st.P95TotalMS)
	emit("queue_mean_ms", "Mean queueing time", st.MeanQueueMS)
	emit("cache_hits", "Host activation-cache hits", float64(st.CacheHits))
	emit("cache_misses", "Host activation-cache misses", float64(st.CacheMisses))
	emit("cache_evictions", "Host activation-cache evictions", float64(st.CacheEvicted))
	emit("overhead_schedule_us", "Scheduler decision overhead (§6.6)", st.ScheduleDecisionUS)
	emit("overhead_serialize_us", "Latent serialization overhead (§6.6)", st.SerializeUS)
	emit("overhead_handoff_us", "Stage hand-off overhead (§6.6)", st.HandoffUS)
	for i, d := range st.WorkerQueueDepths {
		fmt.Fprintf(&b, "flashps_worker_outstanding{worker=\"%d\"} %d\n", i, d)
	}
	return b.String()
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
