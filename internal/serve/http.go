package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"flashps/internal/obs"
)

func mathFloat32bits(v float32) uint32     { return math.Float32bits(v) }
func mathFloat32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Handler returns the HTTP API (full wire schema in docs/API.md):
//
//	POST   /v1/templates          — prepare a template (idempotent on template_id)
//	GET    /v1/templates          — list cached templates; ?limit=&offset= paginate
//	DELETE /v1/templates/{id}     — invalidate host+disk cache entries (409 if pinned)
//	POST   /v1/templates/{id}/pin — pin a template against eviction (v1.1)
//	DELETE /v1/templates/{id}/pin — clear a pin (v1.1)
//	GET    /v1/cache/stats        — per-tier cache statistics (v1.1)
//	POST   /v1/edits              — serve an edit (EditRequestAPI → EditResponse)
//	GET    /v1/fleet              — fleet control-plane snapshot (FleetResponse)
//	GET    /v1/alerts             — SLO burn-rate alert states (AlertsResponse, v1.3)
//	GET    /v1/stats              — live statistics (Stats)
//	GET    /healthz               — readiness (Health JSON; 503 when not "ok")
//	GET    /metrics               — Prometheus text exposition from the registry
//	GET    /debug/traces          — span ring buffer as Chrome trace_event JSON;
//	                                ?trace_id= filters to one request's span tree (v1.3)
//	GET    /debug/flightrecorder  — on-demand flight-recorder snapshot (v1.3)
//	GET    /debug/dash            — self-contained live HTML dashboard
//
// Every error on a /v1/* route (including 405s) is a structured JSON
// envelope: {"error": {"code", "message", "retryable"}}.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			h := s.Health()
			w.Header().Set("Content-Type", "application/json")
			if h.Status != "ok" {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(h)
		},
	}))
	mux.HandleFunc("/v1/templates", methods(map[string]http.HandlerFunc{
		http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
			var req PrepareRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeError(w, apiErrorf(CodeInvalidRequest, false, "bad request body: %v", err))
				return
			}
			resp, err := s.Prepare(req)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, resp)
		},
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			limit, err := queryInt(r, "limit")
			if err != nil {
				writeError(w, err)
				return
			}
			offset, err := queryInt(r, "offset")
			if err != nil {
				writeError(w, err)
				return
			}
			list := s.ListTemplates()
			total := len(list)
			if offset >= len(list) {
				list = nil
			} else {
				list = list[offset:]
			}
			if limit > 0 && limit < len(list) {
				list = list[:limit]
			}
			if list == nil {
				list = []TemplateInfo{}
			}
			writeJSON(w, TemplateListResponse{
				Templates: list, Total: total, Limit: limit, Offset: offset,
			})
		},
	}))
	mux.HandleFunc("/v1/templates/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/v1/templates/")
		raw, isPin := strings.CutSuffix(raw, "/pin")
		id, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, apiErrorf(CodeInvalidRequest, false, "bad template id %q", raw))
			return
		}
		if isPin {
			methods(map[string]http.HandlerFunc{
				http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
					if err := s.PinTemplate(id); err != nil {
						writeError(w, err)
						return
					}
					writeJSON(w, PinResponse{TemplateID: id, Pinned: true})
				},
				http.MethodDelete: func(w http.ResponseWriter, r *http.Request) {
					if err := s.UnpinTemplate(id); err != nil {
						writeError(w, err)
						return
					}
					writeJSON(w, PinResponse{TemplateID: id, Pinned: false})
				},
			})(w, r)
			return
		}
		methods(map[string]http.HandlerFunc{
			http.MethodDelete: func(w http.ResponseWriter, r *http.Request) {
				if err := s.DeleteTemplate(id); err != nil {
					writeError(w, err)
					return
				}
				writeJSON(w, DeleteTemplateResponse{TemplateID: id, Deleted: true})
			},
		})(w, r)
	})
	mux.HandleFunc("/v1/cache/stats", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, s.CacheStats())
		},
	}))
	mux.HandleFunc("/v1/edits", methods(map[string]http.HandlerFunc{
		http.MethodPost: func(w http.ResponseWriter, r *http.Request) {
			var req EditRequestAPI
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeError(w, apiErrorf(CodeInvalidRequest, false, "bad request body: %v", err))
				return
			}
			resp, err := s.SubmitEdit(r.Context(), req)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, resp)
		},
	}))
	mux.HandleFunc("/v1/fleet", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, s.Fleet())
		},
	}))
	mux.HandleFunc("/v1/stats", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, s.Snapshot())
		},
	}))
	mux.HandleFunc("/metrics", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", obs.PrometheusContentType)
			if err := s.obs.reg.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		},
	}))
	mux.HandleFunc("/v1/alerts", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			alerts := s.obs.plane.Alerts()
			writeJSON(w, AlertsResponse{
				Worst: s.obs.plane.AlertMax().String(), Alerts: alerts,
			})
		},
	}))
	mux.HandleFunc("/debug/traces", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			var trace uint64
			if raw := r.URL.Query().Get("trace_id"); raw != "" {
				var err error
				if trace, err = obs.ParseTraceID(raw); err != nil {
					writeError(w, apiErrorf(CodeInvalidRequest, false, "%v", err))
					return
				}
			}
			w.Header().Set("Content-Type", "application/json")
			if err := s.obs.tracer.WriteChromeJSONTrace(w, trace); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		},
	}))
	mux.HandleFunc("/debug/flightrecorder", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := s.obs.plane.FlightSnapshot("debug").WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		},
	}))
	mux.HandleFunc("/debug/dash", methods(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			if err := s.obs.plane.WriteDashboard(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		},
	}))
	return mux
}

// methods dispatches on the request method and rejects everything else
// with a 405 carrying the structured error envelope, advertising the
// allowed methods per RFC 9110.
func methods(h map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(h))
	for m := range h {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		if fn, ok := h[r.Method]; ok {
			fn(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		writeErrorStatus(w, http.StatusMethodNotAllowed,
			apiErrorf(CodeInvalidRequest, false, "method %s not allowed (allow: %s)", r.Method, allow))
	}
}

// writeError writes err as the structured envelope with its mapped status.
func writeError(w http.ResponseWriter, err error) {
	ae := asAPIError(err)
	writeErrorStatus(w, ae.HTTPStatus(), ae)
}

func writeErrorStatus(w http.ResponseWriter, status int, ae *APIError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: ae})
}

// queryInt parses a non-negative integer query parameter (absent = 0).
func queryInt(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, apiErrorf(CodeInvalidRequest, false, "bad %s %q: want a non-negative integer", key, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeError(w, apiErrorf(CodeInternal, false, "encode response: %v", err))
	}
}
