package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
)

func mathFloat32bits(v float32) uint32     { return math.Float32bits(v) }
func mathFloat32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Handler returns the HTTP API:
//
//	POST /v1/templates — prepare a template (PrepareRequest → PrepareResponse)
//	POST /v1/edits     — serve an edit (EditRequestAPI → EditResponse)
//	GET  /v1/stats     — live statistics (Stats)
//	GET  /healthz      — readiness (Health JSON; 503 when starting/overloaded)
//	GET  /metrics      — Prometheus text exposition from the metrics registry
//	GET  /debug/traces — span ring buffer as Chrome trace_event JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", onlyMethod(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	}))
	mux.HandleFunc("/v1/templates", onlyMethod(http.MethodPost, func(w http.ResponseWriter, r *http.Request) {
		var req PrepareRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.Prepare(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/edits", onlyMethod(http.MethodPost, func(w http.ResponseWriter, r *http.Request) {
		var req EditRequestAPI
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.SubmitEdit(r.Context(), req)
		if errors.Is(err, ErrOverloaded) {
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	}))
	mux.HandleFunc("/v1/stats", onlyMethod(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Snapshot())
	}))
	mux.HandleFunc("/metrics", onlyMethod(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := s.obs.reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}))
	mux.HandleFunc("/debug/traces", onlyMethod(http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.obs.tracer.WriteChromeJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}))
	return mux
}

// onlyMethod rejects every HTTP method but the given one with 405,
// advertising the allowed method per RFC 9110.
func onlyMethod(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
