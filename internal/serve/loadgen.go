package serve

import (
	"context"
	"sync"
	"time"

	"flashps/internal/metrics"
	"flashps/internal/tensor"
	"flashps/internal/workload"
)

// LoadGenConfig parameterizes an open-loop load generation run against a
// Server: requests are fired at their trace arrival times regardless of
// completion (the paper's Poisson workload, §6.1).
type LoadGenConfig struct {
	// RPS is the Poisson arrival rate.
	RPS float64
	// N is the number of requests.
	N int
	// Dist draws the mask ratios.
	Dist workload.MaskDist
	// Templates are the prepared template ids to draw from (Zipf-ish by
	// order: earlier ids are hotter).
	Templates []uint64
	// TimeScale compresses virtual trace time onto the wall clock
	// (e.g. 0.01 runs a 100 s trace in 1 s). 0 means 1.
	TimeScale float64
	// Seed drives the trace randomness.
	Seed uint64
	// DeadlineMS, when > 0, attaches a per-request deadline so the run
	// exercises the deadline/eviction path (e.g. combined with an armed
	// fault injector on the server).
	DeadlineMS int64
}

// LoadGenResult aggregates an open-loop run. The recorders are
// SyncRecorders because in-flight request goroutines record concurrently;
// Errors is only written under the run's internal lock and is safe to read
// once RunLoad returns.
type LoadGenResult struct {
	Total     metrics.SyncRecorder // total latency, ms
	Queue     metrics.SyncRecorder // queue time, ms
	Inference metrics.SyncRecorder // inference time, ms
	Errors    int
	// Degraded and Retried count completed requests that fell back to full
	// compute or were re-executed after a worker crash.
	Degraded int
	Retried  int
	Elapsed  time.Duration
}

// RunLoad fires the configured open-loop workload at the server and waits
// for every request to complete.
func RunLoad(ctx context.Context, srv *Server, cfg LoadGenConfig) (*LoadGenResult, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if len(cfg.Templates) == 0 {
		cfg.Templates = []uint64{1}
	}
	reqs, err := workload.Generate(workload.TraceConfig{
		N: cfg.N, RPS: cfg.RPS, Dist: cfg.Dist,
		Templates: len(cfg.Templates), ZipfS: 1.1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &LoadGenResult{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	rng := tensor.NewRNG(cfg.Seed ^ 0x10AD)
	for _, r := range reqs {
		r := r
		// Open loop: sleep to the request's (scaled) arrival time.
		at := time.Duration(r.Arrival * cfg.TimeScale * float64(time.Second))
		if wait := at - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				wg.Wait()
				return res, ctx.Err()
			}
		}
		wg.Add(1)
		maskSeed := rng.Uint64()
		go func() {
			defer wg.Done()
			resp, err := srv.SubmitEdit(ctx, EditRequestAPI{
				TemplateID: cfg.Templates[int(r.Template-1)%len(cfg.Templates)],
				Prompt:     "load",
				Seed:       uint64(r.ID),
				Mask:       MaskSpec{Type: "ratio", Ratio: r.MaskRatio, Seed: maskSeed},
				DeadlineMS: cfg.DeadlineMS,
			})
			if err != nil {
				mu.Lock()
				res.Errors++
				mu.Unlock()
				return
			}
			if resp.Degraded || resp.Retries > 0 {
				mu.Lock()
				if resp.Degraded {
					res.Degraded++
				}
				if resp.Retries > 0 {
					res.Retried++
				}
				mu.Unlock()
			}
			res.Total.Add(resp.TotalMS)
			res.Queue.Add(resp.QueueMS)
			res.Inference.Add(resp.InferenceMS)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}
