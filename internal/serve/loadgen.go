package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"flashps/internal/metrics"
	"flashps/internal/tensor"
	"flashps/internal/workload"
)

// LoadGenConfig parameterizes an open-loop load generation run against a
// Server: requests are fired at their trace arrival times regardless of
// completion (the paper's Poisson workload, §6.1).
type LoadGenConfig struct {
	// RPS is the Poisson arrival rate.
	RPS float64
	// N is the number of requests.
	N int
	// Dist draws the mask ratios.
	Dist workload.MaskDist
	// Templates are the prepared template ids to draw from (Zipf-ish by
	// order: earlier ids are hotter).
	Templates []uint64
	// TimeScale compresses virtual trace time onto the wall clock
	// (e.g. 0.01 runs a 100 s trace in 1 s). 0 means 1.
	TimeScale float64
	// Seed drives the trace randomness.
	Seed uint64
	// DeadlineMS, when > 0, attaches a per-request deadline so the run
	// exercises the deadline/eviction path (e.g. combined with an armed
	// fault injector on the server).
	DeadlineMS int64
}

// RequestOutcome is one request's measured result in an open-loop run,
// matched to its trace entry by ID so a captured run can be replayed
// through the simulator and compared request-for-request.
type RequestOutcome struct {
	ID        int
	Arrival   float64 // trace arrival, virtual seconds
	MaskRatio float64
	Worker    int
	TotalMS   float64
	QueueMS   float64
	InferMS   float64
	Error     bool
}

// LoadGenResult aggregates an open-loop run. The recorders are
// SyncRecorders because in-flight request goroutines record concurrently;
// Errors is only written under the run's internal lock and is safe to read
// once RunLoad returns.
type LoadGenResult struct {
	Total     metrics.SyncRecorder // total latency, ms
	Queue     metrics.SyncRecorder // queue time, ms
	Inference metrics.SyncRecorder // inference time, ms
	Errors    int
	// Degraded and Retried count completed requests that fell back to full
	// compute or were re-executed after a worker crash.
	Degraded int
	Retried  int
	Elapsed  time.Duration
	// Trace is the generated workload trace the run fired, in virtual
	// (unscaled) trace time — the input a simulator replay needs.
	Trace []workload.Request
	// Requests are the per-request outcomes, sorted by trace ID.
	Requests []RequestOutcome
	// OfferedRPS is the realized offered rate: requests per second of
	// scaled trace span (what the server actually saw, as opposed to the
	// configured Poisson rate).
	OfferedRPS float64
}

// RunLoad fires the configured open-loop workload at the server and waits
// for every request to complete.
func RunLoad(ctx context.Context, srv *Server, cfg LoadGenConfig) (*LoadGenResult, error) {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if len(cfg.Templates) == 0 {
		cfg.Templates = []uint64{1}
	}
	reqs, err := workload.Generate(workload.TraceConfig{
		N: cfg.N, RPS: cfg.RPS, Dist: cfg.Dist,
		Templates: len(cfg.Templates), ZipfS: 1.1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &LoadGenResult{Trace: reqs}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	rng := tensor.NewRNG(cfg.Seed ^ 0x10AD)
	for _, r := range reqs {
		r := r
		// Open loop: sleep to the request's (scaled) arrival time.
		at := time.Duration(r.Arrival * cfg.TimeScale * float64(time.Second))
		if wait := at - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				wg.Wait()
				return res, ctx.Err()
			}
		}
		wg.Add(1)
		maskSeed := rng.Uint64()
		go func() {
			defer wg.Done()
			resp, err := srv.SubmitEdit(ctx, EditRequestAPI{
				TemplateID: cfg.Templates[int(r.Template-1)%len(cfg.Templates)],
				Prompt:     "load",
				Seed:       uint64(r.ID),
				Mask:       MaskSpec{Type: "ratio", Ratio: r.MaskRatio, Seed: maskSeed},
				DeadlineMS: cfg.DeadlineMS,
			})
			if err != nil {
				mu.Lock()
				res.Errors++
				res.Requests = append(res.Requests, RequestOutcome{
					ID: r.ID, Arrival: r.Arrival, MaskRatio: r.MaskRatio,
					Error: true,
				})
				mu.Unlock()
				return
			}
			mu.Lock()
			if resp.Degraded {
				res.Degraded++
			}
			if resp.Retries > 0 {
				res.Retried++
			}
			res.Requests = append(res.Requests, RequestOutcome{
				ID: r.ID, Arrival: r.Arrival, MaskRatio: r.MaskRatio,
				Worker: resp.Worker, TotalMS: resp.TotalMS,
				QueueMS: resp.QueueMS, InferMS: resp.InferenceMS,
			})
			mu.Unlock()
			res.Total.Add(resp.TotalMS)
			res.Queue.Add(resp.QueueMS)
			res.Inference.Add(resp.InferenceMS)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	sort.Slice(res.Requests, func(i, j int) bool { return res.Requests[i].ID < res.Requests[j].ID })
	if span := reqs[len(reqs)-1].Arrival * cfg.TimeScale; span > 0 {
		res.OfferedRPS = float64(len(reqs)) / span
	}
	return res, nil
}
