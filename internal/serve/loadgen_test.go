package serve

import (
	"context"
	"testing"
	"time"

	"flashps/internal/workload"
)

func TestRunLoadCompletesAllRequests(t *testing.T) {
	s := newTestServer(t, 2)
	prepareTemplate(t, s, 1)
	prepareTemplate(t, s, 2)
	res, err := RunLoad(context.Background(), s, LoadGenConfig{
		RPS: 50, N: 15, Dist: workload.ProductionTrace,
		Templates: []uint64{1, 2}, TimeScale: 0.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Total.Count() != 15 {
		t.Fatalf("completed %d of 15", res.Total.Count())
	}
	if res.Total.Mean() <= 0 || res.Elapsed <= 0 {
		t.Fatalf("timings missing: %+v", res)
	}
	if res.Queue.Mean() > res.Total.Mean() {
		t.Fatal("queue time cannot exceed total latency")
	}
}

func TestRunLoadUnpreparedTemplateCountsErrors(t *testing.T) {
	s := newTestServer(t, 1)
	prepareTemplate(t, s, 1)
	res, err := RunLoad(context.Background(), s, LoadGenConfig{
		RPS: 100, N: 6, Dist: workload.ProductionTrace,
		Templates: []uint64{1, 99}, // 99 never prepared
		TimeScale: 0.05, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("expected errors for the unprepared template")
	}
	if res.Errors+res.Total.Count() != 6 {
		t.Fatalf("errors %d + completed %d != 6", res.Errors, res.Total.Count())
	}
}

func TestRunLoadContextCancel(t *testing.T) {
	s := newTestServer(t, 1)
	prepareTemplate(t, s, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// A very slow open-loop schedule: cancellation must interrupt it.
	_, err := RunLoad(ctx, s, LoadGenConfig{
		RPS: 0.01, N: 5, Dist: workload.ProductionTrace,
		Templates: []uint64{1}, Seed: 5,
	})
	if err == nil {
		t.Fatal("expected context error")
	}
}
