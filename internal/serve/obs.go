package serve

import (
	"time"

	"flashps/internal/cache"
	"flashps/internal/obs"
)

// Span taxonomy: every request emits one span per pipeline stage it
// crosses (Fig 10-Bottom), all tied together by the request id and placed
// on the serving worker's trace track. The clock-driven replay drivers
// emit the coarse subset (request/queue/postprocess plus a single
// "inference" span) through the same plane; docs/OBSERVABILITY.md maps the
// two taxonomies onto each other.
const (
	// stageRequest is the parent span, arrival → response complete.
	stageRequest = "request"
	// stageSchedule is the routing decision (Algorithm 2, §6.6 overhead).
	stageSchedule = "schedule"
	// stagePreprocess is mask rasterization + session open on the CPU pool.
	stagePreprocess = "preprocess"
	// stageCacheLoad is the template-cache fetch inside preprocessing
	// (host hit or disk staging, §4.2).
	stageCacheLoad = "cache_load"
	// stageQueue is the wait in the worker's ready queue until admission
	// into the running batch at a step boundary.
	stageQueue = "queue"
	// stageDenoiseStep is one denoising step of the running batch (§4.3).
	stageDenoiseStep = "denoise_step"
	// stageSerialize is latent serialization on the engine loop (§6.6).
	stageSerialize = "serialize"
	// stageHandoff is the engine → postprocess pool transfer (§6.6).
	stageHandoff = "handoff"
	// stagePostprocess is latent decode + PNG encode on the CPU pool.
	stagePostprocess = "postprocess"
	// stageEvict marks a job removed at a stage/step boundary because its
	// deadline expired, its client canceled, or it was shed.
	stageEvict = "evict"
	// stageReplicaStage is the per-replica template staging copy inside
	// preprocessing: the deep copy + checksum of the shared cache entry
	// into the serving worker's local slot (fleet mode only, DESIGN.md §12).
	stageReplicaStage = "replica_stage"
)

// Request outcome labels for flashps_requests_total.
const (
	outcomeOK       = "ok"
	outcomeError    = "error"
	outcomeRejected = "rejected"
	outcomeDeadline = "deadline"
	outcomeCanceled = "canceled"
	outcomeShed     = "shed"
)

// traceCat is the span category the live serving plane records under.
const traceCat = "serve"

// serveObs wraps the shared telemetry plane (internal/obs.Plane) with the
// live plane's wall-clock seam and its serve-only fault-tolerance
// counters. All core instruments — outcome/step counters, per-stage
// histograms and quantiles, batch occupancy, worker queue depths, SLO
// attainment, goodput — live on the plane, so a live run and a replayed
// trace expose identical metric shapes. Hot-path updates are lock-free
// (atomics) or one short critical section (tracer ring).
type serveObs struct {
	plane *obs.Plane
	wall  *obs.WallClock

	// reg/tracer alias the plane's registry and tracer for the HTTP layer.
	reg    *obs.Registry
	tracer *obs.Tracer

	// Fault-tolerance counters: retried jobs after a worker crash,
	// requests degraded from cached to full compute, worker engine-loop
	// crash/restart cycles, and deadline-evicted requests.
	retries          *obs.Counter
	degraded         *obs.Counter
	workerRestarts   *obs.Counter
	deadlineExceeded *obs.Counter
	// stagings counts per-replica template staging copies (fleet mode).
	stagings *obs.Counter
}

func newServeObs(traceRing int) *serveObs {
	wall := &obs.WallClock{}
	plane := obs.NewPlane(obs.PlaneConfig{Clock: wall, TraceRing: traceRing})
	reg := plane.Reg
	return &serveObs{
		plane:  plane,
		wall:   wall,
		reg:    reg,
		tracer: plane.Tracer,
		retries: reg.Counter("flashps_retries_total",
			"Jobs retried on an alternate replica after a worker crash"),
		degraded: reg.Counter("flashps_degraded_total",
			"Requests degraded from cached flashps mode to full compute"),
		workerRestarts: reg.Counter("flashps_worker_restarts_total",
			"Worker engine-loop crashes detected and restarted by the supervisor"),
		deadlineExceeded: reg.Counter("flashps_deadline_exceeded_total",
			"Requests whose deadline expired before completion"),
		stagings: reg.Counter("flashps_replica_stagings_total",
			"Per-replica template staging copies performed by the fleet's serving workers"),
	}
}

// bindStore registers scrape-time gauges over the tiered template
// store's live statistics, and feeds the dashboard's cache panel. The
// host tier is always present; disk-tier gauges appear only when a spill
// dir is configured.
func (o *serveObs) bindStore(store *cache.TieredStore) {
	host := func() cache.TierStats { return store.Stats()[0] }
	o.reg.GaugeFunc("flashps_cache_hits",
		"Host activation-cache hits",
		func() float64 { return float64(host().Hits) })
	o.reg.GaugeFunc("flashps_cache_misses",
		"Host activation-cache misses",
		func() float64 { return float64(host().Misses) })
	o.reg.GaugeFunc("flashps_cache_evictions",
		"Host activation-cache evictions (demotions to the spill tier)",
		func() float64 { return float64(host().Evictions) })
	o.reg.GaugeFunc("flashps_cache_pinned_templates",
		"Templates pinned against eviction in the RAM tier",
		func() float64 { return float64(host().Pinned) })
	o.reg.GaugeVecFunc("flashps_cache_occupancy_bytes",
		"Per-tier cache occupancy in bytes (disk: physical bytes after dedup)",
		func() []obs.LabeledValue {
			return tierValues(store, func(t cache.TierStats) float64 { return float64(t.UsedBytes) })
		},
		"tier")
	o.reg.GaugeVecFunc("flashps_cache_capacity_bytes",
		"Per-tier cache capacity in bytes (0 = unbounded)",
		func() []obs.LabeledValue {
			return tierValues(store, func(t cache.TierStats) float64 { return float64(t.CapacityBytes) })
		},
		"tier")
	o.reg.GaugeVecFunc("flashps_cache_entries",
		"Templates stored per cache tier",
		func() []obs.LabeledValue {
			return tierValues(store, func(t cache.TierStats) float64 { return float64(t.Entries) })
		},
		"tier")
	if store.HasSpill() {
		o.reg.GaugeFunc("flashps_cache_disk_hits",
			"Template fetches staged back from the disk tier (§4.2)",
			func() float64 { return float64(store.DiskHits()) })
		o.reg.GaugeFunc("flashps_cache_dedup_ratio",
			"Spill-tier dedup ratio: logical bytes / physical bytes",
			func() float64 {
				for _, t := range store.Stats() {
					if t.Tier == "disk" {
						return t.DedupRatio
					}
				}
				return 1
			})
	}
	o.plane.SetCacheOccupancySource(func() []obs.CacheTierOccupancy {
		stats := store.Stats()
		out := make([]obs.CacheTierOccupancy, len(stats))
		for i, t := range stats {
			out[i] = obs.CacheTierOccupancy{
				Tier: t.Tier, CapacityBytes: t.CapacityBytes,
				UsedBytes: t.UsedBytes, Entries: t.Entries, Pinned: t.Pinned,
				Hits: t.Hits, Misses: t.Misses, Evictions: t.Evictions,
				DedupRatio: t.DedupRatio,
			}
		}
		return out
	})
}

// tierValues snapshots one per-tier statistic as labeled gauge samples.
func tierValues(store *cache.TieredStore, f func(cache.TierStats) float64) []obs.LabeledValue {
	stats := store.Stats()
	out := make([]obs.LabeledValue, len(stats))
	for i, t := range stats {
		out[i] = obs.LabeledValue{Values: []string{t.Tier}, V: f(t)}
	}
	return out
}

// span records one trace span, placing the wall timestamp on the plane's
// clock axis, and mirrors it into the stage histogram and quantile window,
// so the breakdown metrics and the trace never disagree. Causal identity
// is derived here — trace id from the request id, span id from the stage
// name (plus the step index for repeated stages) — so every span of a
// request hangs under its root and the ids match what the clock-driven
// replay drivers would derive for the same request.
func (o *serveObs) span(req uint64, stage string, worker int, start time.Time, dur time.Duration, args map[string]float64) {
	trace := obs.TraceID(req)
	root := obs.SpanID(trace, stageRequest, 0)
	var idx uint64
	if step, ok := args["step"]; ok && step > 0 {
		idx = uint64(step)
	}
	id, parent := obs.SpanID(trace, stage, idx), root
	switch stage {
	case stageRequest:
		id, parent = root, 0
	case stageCacheLoad, stageReplicaStage:
		// Nested inside preprocessing: hang under that span, not the root.
		parent = obs.SpanID(trace, stagePreprocess, 0)
	}
	o.plane.SpanCausal(req, stage, traceCat, worker,
		o.wall.Seconds(start), dur.Seconds(), trace, id, parent, args)
}

// outcome counts one terminal request outcome.
func (o *serveObs) outcome(outcome string) { o.plane.RequestOutcome(outcome) }

// observeSLO classifies a completed request against its deadline class.
func (o *serveObs) observeSLO(ratio float64, latency time.Duration) {
	o.plane.ObserveSLO(ratio, latency.Seconds())
}

// incStep counts one executed per-request denoising step.
func (o *serveObs) incStep() { o.plane.IncSteps() }

// cost records one structured cost sample into the plane's profile
// recorder (wall-clock measured durations; the calibration input).
func (o *serveObs) cost(s obs.CostSample) { o.plane.RecordCost(s) }

// observeBatch records the running-batch size at one executed engine step.
func (o *serveObs) observeBatch(size int) { o.plane.ObserveBatch(size) }

// setOutstanding publishes a worker's queue depth.
func (o *serveObs) setOutstanding(worker, depth int) {
	o.plane.SetQueueDepth(worker, depth)
}
