package serve

import (
	"fmt"
	"time"

	"flashps/internal/cache"
	"flashps/internal/obs"
)

// Span taxonomy: every request emits one span per pipeline stage it
// crosses (Fig 10-Bottom), all tied together by the request id and placed
// on the serving worker's trace track.
const (
	// stageRequest is the parent span, arrival → response complete.
	stageRequest = "request"
	// stageSchedule is the routing decision (Algorithm 2, §6.6 overhead).
	stageSchedule = "schedule"
	// stagePreprocess is mask rasterization + session open on the CPU pool.
	stagePreprocess = "preprocess"
	// stageCacheLoad is the template-cache fetch inside preprocessing
	// (host hit or disk staging, §4.2).
	stageCacheLoad = "cache_load"
	// stageQueue is the wait in the worker's ready queue until admission
	// into the running batch at a step boundary.
	stageQueue = "queue"
	// stageDenoiseStep is one denoising step of the running batch (§4.3).
	stageDenoiseStep = "denoise_step"
	// stageSerialize is latent serialization on the engine loop (§6.6).
	stageSerialize = "serialize"
	// stageHandoff is the engine → postprocess pool transfer (§6.6).
	stageHandoff = "handoff"
	// stagePostprocess is latent decode + PNG encode on the CPU pool.
	stagePostprocess = "postprocess"
	// stageEvict marks a job removed at a stage/step boundary because its
	// deadline expired, its client canceled, or it was shed.
	stageEvict = "evict"
)

// Request outcome labels for flashps_requests_total.
const (
	outcomeOK       = "ok"
	outcomeError    = "error"
	outcomeRejected = "rejected"
	outcomeDeadline = "deadline"
	outcomeCanceled = "canceled"
	outcomeShed     = "shed"
)

// serveObs bundles the serving plane's registry-backed instruments and the
// span tracer. Hot-path updates are lock-free (atomics) or one short
// critical section (tracer ring).
type serveObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	// requests counts terminal outcomes; steps counts executed denoising
	// steps across all workers.
	requests *obs.CounterVec
	steps    *obs.Counter
	// stage is the per-stage latency histogram (seconds) keyed by the
	// span taxonomy above — the live Fig 10/11 breakdown.
	stage *obs.HistogramVec
	// batchOccupancy observes the running-batch size at every executed
	// engine step (the §4.3 batching benefit).
	batchOccupancy *obs.Histogram
	// workerOutstanding tracks each worker's assigned-and-unfinished
	// requests (queue depth as the scheduler sees it).
	workerOutstanding *obs.GaugeVec

	// Fault-tolerance counters: retried jobs after a worker crash,
	// requests degraded from cached to full compute, worker engine-loop
	// crash/restart cycles, and deadline-evicted requests.
	retries          *obs.Counter
	degraded         *obs.Counter
	workerRestarts   *obs.Counter
	deadlineExceeded *obs.Counter
}

func newServeObs(traceRing int) *serveObs {
	reg := obs.NewRegistry()
	o := &serveObs{
		reg:    reg,
		tracer: obs.NewTracer(traceRing),
		requests: reg.CounterVec("flashps_requests_total",
			"Edit requests by terminal outcome", "outcome"),
		steps: reg.Counter("flashps_denoise_steps_total",
			"Denoising steps executed across all workers"),
		stage: reg.HistogramVec("flashps_request_stage_seconds",
			"Per-stage request latency (Fig 10 pipeline breakdown)",
			obs.LatencyBuckets, "stage"),
		batchOccupancy: reg.Histogram("flashps_batch_occupancy",
			"Running-batch size at each executed denoising step",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		workerOutstanding: reg.GaugeVec("flashps_worker_outstanding",
			"Outstanding requests per worker", "worker"),
		retries: reg.Counter("flashps_retries_total",
			"Jobs retried on an alternate replica after a worker crash"),
		degraded: reg.Counter("flashps_degraded_total",
			"Requests degraded from cached flashps mode to full compute"),
		workerRestarts: reg.Counter("flashps_worker_restarts_total",
			"Worker engine-loop crashes detected and restarted by the supervisor"),
		deadlineExceeded: reg.Counter("flashps_deadline_exceeded_total",
			"Requests whose deadline expired before completion"),
	}
	reg.GaugeFunc("flashps_trace_spans_total",
		"Spans recorded into the trace ring (including dropped)",
		func() float64 { return float64(o.tracer.Total()) })
	reg.GaugeFunc("flashps_trace_spans_dropped",
		"Spans evicted from the trace ring",
		func() float64 { return float64(o.tracer.Dropped()) })
	return o
}

// bindStore registers scrape-time gauges over the template store's live
// counters, covering both the host-only and tiered configurations.
func (o *serveObs) bindStore(store templateStore) {
	stats := func() (hits, misses, evictions int) { return 0, 0, 0 }
	switch st := store.(type) {
	case *cache.Store:
		stats = st.Stats
	case *cache.Tiered:
		stats = st.Host.Stats
		o.reg.GaugeFunc("flashps_cache_disk_hits",
			"Template fetches staged back from the disk tier (§4.2)",
			func() float64 { return float64(st.DiskHits()) })
	}
	o.reg.GaugeFunc("flashps_cache_hits",
		"Host activation-cache hits",
		func() float64 { h, _, _ := stats(); return float64(h) })
	o.reg.GaugeFunc("flashps_cache_misses",
		"Host activation-cache misses",
		func() float64 { _, m, _ := stats(); return float64(m) })
	o.reg.GaugeFunc("flashps_cache_evictions",
		"Host activation-cache evictions",
		func() float64 { _, _, e := stats(); return float64(e) })
}

// observeStage records a completed stage into the latency histogram.
func (o *serveObs) observeStage(stage string, d time.Duration) {
	o.stage.With(stage).Observe(d.Seconds())
}

// span records one trace span and mirrors it into the stage histogram, so
// the breakdown metrics and the trace never disagree.
func (o *serveObs) span(req uint64, stage string, worker int, start time.Time, dur time.Duration, args map[string]float64) {
	if dur < 0 {
		dur = 0
	}
	o.tracer.Span(req, stage, "serve", worker, start, dur, args)
	o.observeStage(stage, dur)
}

// setOutstanding publishes a worker's queue depth.
func (o *serveObs) setOutstanding(worker, depth int) {
	o.workerOutstanding.With(fmt.Sprintf("%d", worker)).Set(float64(depth))
}
