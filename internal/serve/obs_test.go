package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashps/internal/batching"
	"flashps/internal/perfmodel"
	"flashps/internal/workload"
)

// TestLoadGenObservability is the PR's acceptance check: a load-generator
// run against the in-process server must yield (a) a /metrics scrape with
// request counters, per-stage latency histograms, and cache gauges, and
// (b) a /debug/traces export that parses as Chrome trace_event JSON with
// at least five distinct span types per request.
func TestLoadGenObservability(t *testing.T) {
	s := newTestServer(t, 2)
	prepareTemplate(t, s, 1)
	prepareTemplate(t, s, 2)
	res, err := RunLoad(context.Background(), s, LoadGenConfig{
		RPS: 60, N: 10, Dist: workload.ProductionTrace,
		Templates: []uint64{1, 2}, TimeScale: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d load errors", res.Errors)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// (a) The metrics scrape.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`flashps_requests_total{outcome="ok"} 10`,
		`flashps_request_stage_seconds_count{stage="queue"} 10`,
		`flashps_request_stage_seconds_count{stage="preprocess"} 10`,
		`flashps_request_stage_seconds_count{stage="cache_load"} 10`,
		`flashps_request_stage_seconds_count{stage="denoise_step"} 50`, // 10 req × 5 steps
		`flashps_request_stage_seconds_count{stage="postprocess"} 10`,
		`flashps_request_stage_seconds_count{stage="serialize"} 10`,
		`flashps_request_stage_seconds_count{stage="schedule"} 10`,
		`flashps_request_stage_seconds_count{stage="request"} 10`,
		"flashps_denoise_steps_total 50",
		"flashps_cache_hits 1", // prefix: ≥10 hits
		"flashps_cache_misses",
		"flashps_batch_occupancy_sum",
		`flashps_worker_queue_depth{worker="0"} 0`,
		`flashps_worker_queue_depth{worker="1"} 0`,
		`flashps_sched_decisions_total{kind="place"} 10`,
		`flashps_slo_requests_total`,
		"flashps_slo_attainment",
		"flashps_goodput_rps",
		`flashps_request_stage_quantile_seconds{stage="request",quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics scrape missing %q in:\n%s", want, text)
		}
	}
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", got)
	}

	// (b) The live dashboard.
	resp, err = http.Get(ts.URL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/html; charset=utf-8" {
		t.Fatalf("/debug/dash Content-Type = %q", got)
	}
	for _, want := range []string{"<title>FlashPS telemetry</title>", "SLO attainment", "Stage latency"} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}

	// (c) The trace export.
	resp, err = http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Ph   string             `json:"ph"`
			TS   int64              `json:"ts"`
			Dur  int64              `json:"dur"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	perReq := map[uint64]map[string][2]int64{} // request → span name → [ts, end]
	reqWindow := map[uint64][2]int64{}
	flows := 0
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "s", "f":
			// Causal flow events binding parent → child spans.
			flows++
			continue
		case "X":
		default:
			t.Fatalf("span %q has ph=%q, want X/s/f", e.Name, e.Ph)
		}
		if e.Args["trace_id"] == 0 || e.Args["span_id"] == 0 {
			t.Fatalf("span %q missing causal identity: %v", e.Name, e.Args)
		}
		id := uint64(e.Args["request"])
		if perReq[id] == nil {
			perReq[id] = map[string][2]int64{}
		}
		perReq[id][e.Name] = [2]int64{e.TS, e.TS + e.Dur}
		if e.Name == "request" {
			reqWindow[id] = [2]int64{e.TS, e.TS + e.Dur}
		}
	}
	if flows == 0 {
		t.Fatal("trace export has no causal flow events")
	}
	if len(reqWindow) != 10 {
		t.Fatalf("parent request spans = %d, want 10", len(reqWindow))
	}
	for id, spans := range perReq {
		for _, stage := range []string{
			stageQueue, stagePreprocess, stageDenoiseStep, stageCacheLoad, stagePostprocess,
		} {
			if _, ok := spans[stage]; !ok {
				t.Fatalf("request %d missing span type %q (has %v)", id, stage, spans)
			}
		}
		if len(spans) < 5 {
			t.Fatalf("request %d has %d span types, want ≥5", id, len(spans))
		}
		// Every stage span nests within the parent request window (±2 µs
		// slack for independent microsecond truncation of start and dur).
		const slack = 2
		win := reqWindow[id]
		for name, se := range spans {
			if name == stageRequest {
				continue
			}
			if se[0] < win[0]-slack || se[1] > win[1]+slack {
				t.Fatalf("request %d span %q [%d,%d] outside request [%d,%d]",
					id, name, se[0], se[1], win[0], win[1])
			}
			if se[1] < se[0] {
				t.Fatalf("request %d span %q ends before it starts", id, name)
			}
		}
	}
}

func TestGETOnlyEndpointsReject405(t *testing.T) {
	s := newTestServer(t, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/stats", "/metrics", "/debug/traces", "/debug/dash", "/healthz"} {
		res, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", path, res.StatusCode)
		}
		if allow := res.Header.Get("Allow"); allow != http.MethodGet {
			t.Fatalf("POST %s Allow = %q", path, allow)
		}
	}
}

func TestHealthzReadiness(t *testing.T) {
	// Not started yet → 503 "starting".
	s, err := New(Config{
		Model: testModel, Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 1, MaxQueue: 2, Policy: batching.MaskAware, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if h.Status != "starting" || h.Started {
		t.Fatalf("pre-start health = %+v", h)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-start healthz = %d, want 503", res.StatusCode)
	}

	s.Start()
	t.Cleanup(s.Close)
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body Health
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || body.Status != "ok" || body.Workers != 1 {
		t.Fatalf("healthz = %d %+v", res.StatusCode, body)
	}

	// Saturate the single worker's admission budget → 503 "overloaded".
	j1, j2 := &job{id: 1001}, &job{id: 1002}
	s.workers[0].addOutstanding(j1)
	s.workers[0].addOutstanding(j2)
	res, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || body.Status != "overloaded" {
		t.Fatalf("saturated healthz = %d %+v", res.StatusCode, body)
	}
	s.workers[0].removeOutstanding(j1)
	s.workers[0].removeOutstanding(j2)
	if got := s.Health().Status; got != "ok" {
		t.Fatalf("drained health = %q", got)
	}
}
