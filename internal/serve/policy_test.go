package serve

import (
	"context"
	"errors"
	"testing"

	"flashps/internal/batching"
	"flashps/internal/perfmodel"
)

// newPolicyServer builds a server with the given step-policy defaults on
// the standard test model.
func newPolicyServer(t testing.TB, cfg func(*Config)) *Server {
	t.Helper()
	c := Config{
		Model:    testModel,
		Profile:  perfmodel.SD21Paper,
		Workers:  1,
		MaxBatch: 4, PreWorkers: 2, PostWorkers: 2,
		Policy: batching.MaskAware,
		Seed:   42,
	}
	if cfg != nil {
		cfg(&c)
	}
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	return s
}

func TestEditPolicyEcho(t *testing.T) {
	s := newTestServer(t, 1)
	prepareTemplate(t, s, 1)
	resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Prompt: "edit", Seed: 3, Policy: "block",
		Mask: MaskSpec{Type: "ratio", Ratio: 0.3, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Policy != "block" {
		t.Fatalf("Policy = %q, want block", resp.Policy)
	}
	if resp.ReusedBlockRatio <= 0 || resp.ReusedBlockRatio >= 1 {
		t.Fatalf("ReusedBlockRatio = %v, want in (0,1)", resp.ReusedBlockRatio)
	}
	if resp.StepsComputed != testModel.Steps {
		t.Fatalf("block reuse must not skip steps: %d", resp.StepsComputed)
	}

	// No policy anywhere → the response says so and reports no reuse.
	resp, err = s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Prompt: "edit", Seed: 3,
		Mask: MaskSpec{Type: "ratio", Ratio: 0.3, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Policy != "off" || resp.ReusedBlockRatio != 0 {
		t.Fatalf("uncached edit: policy=%q reused=%v", resp.Policy, resp.ReusedBlockRatio)
	}
}

func TestEditPolicyDefaultsAndClassMapping(t *testing.T) {
	s := newPolicyServer(t, func(c *Config) {
		c.StepPolicy = "timestep"
		c.StepPolicyByClass = map[string]string{"interactive": "layer"}
	})
	prepareTemplate(t, s, 1)
	submit := func(ratio float64, policy string) EditResponse {
		t.Helper()
		resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
			TemplateID: 1, Prompt: "edit", Seed: 3, Policy: policy,
			Mask: MaskSpec{Type: "ratio", Ratio: ratio, Seed: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Small mask → interactive class → the class mapping wins.
	if resp := submit(0.1, ""); resp.Policy != "layer" {
		t.Fatalf("interactive request: policy = %q, want layer", resp.Policy)
	}
	// Larger mask → standard class, no mapping entry → server default.
	if resp := submit(0.3, ""); resp.Policy != "timestep" {
		t.Fatalf("standard request: policy = %q, want timestep", resp.Policy)
	}
	// Explicit request knob beats both server defaults.
	if resp := submit(0.1, "combined"); resp.Policy != "combined" {
		t.Fatalf("override request: policy = %q, want combined", resp.Policy)
	}
	if resp := submit(0.1, "off"); resp.Policy != "off" || resp.ReusedBlockRatio != 0 {
		t.Fatalf("off override: policy=%q reused=%v", resp.Policy, resp.ReusedBlockRatio)
	}
}

func TestEditPolicySkippedForApproximationModes(t *testing.T) {
	// A server-wide default must not leak into TeaCache/naive requests
	// (those modes don't compose with step policies), but an explicit
	// per-request combination is the client's error.
	s := newPolicyServer(t, func(c *Config) { c.StepPolicy = "block" })
	prepareTemplate(t, s, 1)
	resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Prompt: "edit", Seed: 3, Mode: "teacache",
		Mask: MaskSpec{Type: "ratio", Ratio: 0.3, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Policy != "off" {
		t.Fatalf("teacache + server default: policy = %q, want off", resp.Policy)
	}
	_, err = s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Prompt: "edit", Seed: 3, Mode: "teacache", Policy: "block",
		Mask: MaskSpec{Type: "ratio", Ratio: 0.3, Seed: 2},
	})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("teacache + explicit policy: err = %v", err)
	}
}

func TestEditPolicyInvalid(t *testing.T) {
	s := newTestServer(t, 1)
	prepareTemplate(t, s, 1)
	_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Prompt: "edit", Seed: 3, Policy: "wat",
		Mask: MaskSpec{Type: "full"},
	})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeInvalidRequest {
		t.Fatalf("unknown policy: err = %v", err)
	}
}

func TestConfigPolicyValidation(t *testing.T) {
	base := Config{
		Model: testModel, Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 4, PreWorkers: 1, PostWorkers: 1,
		Policy: batching.MaskAware, Seed: 42,
	}
	bad := base
	bad.StepPolicy = "wat"
	if _, err := New(bad); err == nil {
		t.Fatal("unknown default step policy accepted")
	}
	bad = base
	bad.StepPolicyByClass = map[string]string{"interactive": "wat"}
	if _, err := New(bad); err == nil {
		t.Fatal("unknown per-class step policy accepted")
	}
}
