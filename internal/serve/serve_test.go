package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flashps/internal/batching"
	"flashps/internal/faults"
	"flashps/internal/img"
	"flashps/internal/model"
	"flashps/internal/perfmodel"
	"flashps/internal/tensor"
)

var testModel = model.Config{
	Name: "serve-test", LatentH: 6, LatentW: 6, Hidden: 32,
	NumBlocks: 3, FFNMult: 4, Steps: 5, LatentChannels: 4,
}

func newTestServer(t testing.TB, workers int) *Server {
	t.Helper()
	s, err := New(Config{
		Model:    testModel,
		Profile:  perfmodel.SD21Paper,
		Workers:  workers,
		MaxBatch: 4, PreWorkers: 2, PostWorkers: 2,
		Policy: batching.MaskAware,
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	return s
}

func prepareTemplate(t testing.TB, s *Server, id uint64) {
	t.Helper()
	if _, err := s.Prepare(PrepareRequest{TemplateID: id, ImageSeed: id, Prompt: "template"}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskSpecBuild(t *testing.T) {
	m, err := MaskSpec{Type: "rect", Y0: 1, X0: 1, Y1: 3, X1: 4}.Build(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaskedCount() != 6 {
		t.Fatalf("rect count = %d", m.MaskedCount())
	}
	if _, err := (MaskSpec{Type: "rect", Y0: 3, Y1: 3}).Build(6, 6); err == nil {
		t.Fatal("empty rect accepted")
	}
	e, err := MaskSpec{Type: "ellipse", Y0: 0, X0: 0, Y1: 6, X1: 6}.Build(6, 6)
	if err != nil || e.MaskedCount() == 0 {
		t.Fatalf("ellipse: %v count=%d", err, e.MaskedCount())
	}
	if _, err := (MaskSpec{Type: "ellipse"}).Build(6, 6); err == nil {
		t.Fatal("empty ellipse accepted")
	}
	r, err := MaskSpec{Type: "ratio", Ratio: 0.25, Seed: 1}.Build(8, 8)
	if err != nil || r.MaskedCount() != 16 {
		t.Fatalf("ratio mask: %v count=%d", err, r.MaskedCount())
	}
	if _, err := (MaskSpec{Type: "ratio", Ratio: 0}).Build(6, 6); err == nil {
		t.Fatal("ratio 0 accepted")
	}
	f, err := MaskSpec{Type: "full"}.Build(4, 4)
	if err != nil || f.MaskedCount() != 16 {
		t.Fatal("full mask wrong")
	}
	if _, err := (MaskSpec{Type: "nope"}).Build(6, 6); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestMaskSpecJSONRoundTrip(t *testing.T) {
	in := MaskSpec{Type: "rect", Y0: 1, X0: 2, Y1: 3, X1: 4, Ratio: 0.5, Seed: 9}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out MaskSpec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if in.Type != out.Type || in.Y0 != out.Y0 || in.X0 != out.X0 ||
		in.Y1 != out.Y1 || in.X1 != out.X1 || in.Ratio != out.Ratio || in.Seed != out.Seed {
		t.Fatalf("round trip: %+v vs %+v", in, out)
	}
}

func TestMaskSpecPNG(t *testing.T) {
	// White square in the top-left quadrant of a 12×12 mask image →
	// masked top-left cells on a 6×6 latent grid.
	mi := img.New(12, 12)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			mi.Set(y, x, 1, 1, 1)
		}
	}
	data, err := img.EncodePNG(mi)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MaskSpec{Type: "png", PNG: data}.Build(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !m.At(0, 0) || !m.At(2, 2) || m.At(4, 4) {
		t.Fatalf("png mask rasterized wrong: %v", m)
	}
	if _, err := (MaskSpec{Type: "png", PNG: []byte("junk")}).Build(6, 6); err == nil {
		t.Fatal("junk mask image accepted")
	}
	black, _ := img.EncodePNG(img.New(4, 4))
	if _, err := (MaskSpec{Type: "png", PNG: black}).Build(6, 6); err == nil {
		t.Fatal("all-black mask image accepted")
	}
}

func TestPrepareWithUploadedImage(t *testing.T) {
	s := newTestServer(t, 1)
	up, err := img.EncodePNG(img.SynthTemplate(9, 24, 24)) // needs resizing
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare(PrepareRequest{TemplateID: 5, ImagePNG: up, Prompt: "uploaded"}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 5, Prompt: "edit", Seed: 1,
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StepsComputed != testModel.Steps {
		t.Fatalf("edit on uploaded template failed: %+v", resp)
	}
	if _, err := s.Prepare(PrepareRequest{TemplateID: 6, ImagePNG: []byte("junk")}); err == nil {
		t.Fatal("junk template image accepted")
	}
}

func TestParseMode(t *testing.T) {
	for _, mode := range []string{"", "flashps", "full", "naive", "teacache"} {
		if _, err := parseMode(mode); err != nil {
			t.Fatalf("parseMode(%q): %v", mode, err)
		}
	}
	if _, err := parseMode("wat"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestPrepareAndEdit(t *testing.T) {
	s := newTestServer(t, 1)
	prepareTemplate(t, s, 1)
	resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Prompt: "a red scarf", Seed: 3,
		Mask: MaskSpec{Type: "rect", Y0: 1, X0: 1, Y1: 4, X1: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StepsComputed != testModel.Steps {
		t.Fatalf("StepsComputed = %d", resp.StepsComputed)
	}
	if resp.TotalMS <= 0 || resp.InferenceMS <= 0 {
		t.Fatalf("timings missing: %+v", resp)
	}
	if resp.MaskRatio <= 0 {
		t.Fatal("mask ratio missing")
	}
}

func TestEditUnknownTemplate(t *testing.T) {
	s := newTestServer(t, 1)
	_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 99, Mask: MaskSpec{Type: "full"},
	})
	if err == nil {
		t.Fatal("unknown template accepted")
	}
}

func TestEditInvalidMask(t *testing.T) {
	s := newTestServer(t, 1)
	prepareTemplate(t, s, 1)
	_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Mask: MaskSpec{Type: "bogus"},
	})
	if err == nil {
		t.Fatal("invalid mask accepted")
	}
}

func TestConcurrentEditsContinuousBatching(t *testing.T) {
	// Several concurrent requests must all complete, exercising admission
	// at step boundaries, and produce deterministic per-request results.
	s := newTestServer(t, 2)
	prepareTemplate(t, s, 1)
	prepareTemplate(t, s, 2)
	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	resps := make([]EditResponse, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = s.SubmitEdit(context.Background(), EditRequestAPI{
				TemplateID: uint64(i%2 + 1),
				Prompt:     "edit",
				Seed:       uint64(i),
				Mask:       MaskSpec{Type: "ratio", Ratio: 0.1 + 0.05*float64(i%5), Seed: uint64(i)},
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resps[i].StepsComputed != testModel.Steps {
			t.Fatalf("request %d computed %d steps", i, resps[i].StepsComputed)
		}
	}
	st := s.Snapshot()
	if st.Completed != n {
		t.Fatalf("completed = %d want %d", st.Completed, n)
	}
	// §6.6 overhead measurements must be populated and small (sub-ms on
	// this toy engine; the paper reports ≈1 ms at production scale).
	if st.ScheduleDecisionUS <= 0 || st.SerializeUS <= 0 || st.HandoffUS < 0 {
		t.Fatalf("overheads not measured: %+v", st)
	}
	if st.ScheduleDecisionUS > 50000 {
		t.Fatalf("scheduling overhead %.0fµs implausibly large", st.ScheduleDecisionUS)
	}
}

func TestDeterministicOutputAcrossWorkers(t *testing.T) {
	// All workers share weights, so the same request yields the same image
	// regardless of which replica serves it.
	s := newTestServer(t, 2)
	prepareTemplate(t, s, 1)
	req := EditRequestAPI{
		TemplateID: 1, Prompt: "deterministic", Seed: 7,
		Mask:        MaskSpec{Type: "rect", Y0: 0, X0: 0, Y1: 3, X1: 3},
		ReturnImage: true,
	}
	a, err := s.SubmitEdit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SubmitEdit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.ImagePNG, b.ImagePNG) {
		t.Fatal("same request produced different images")
	}
	if len(a.ImagePNG) == 0 {
		t.Fatal("ReturnImage produced no PNG")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := newTestServer(t, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Health.
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, res.Status)
	}
	res.Body.Close()

	// Prepare template.
	body, _ := json.Marshal(PrepareRequest{TemplateID: 5, ImageSeed: 5, Prompt: "p"})
	res, err = http.Post(ts.URL+"/v1/templates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var prep PrepareResponse
	if err := json.NewDecoder(res.Body).Decode(&prep); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if prep.CacheBytes <= 0 {
		t.Fatalf("prepare response: %+v", prep)
	}

	// Edit.
	body, _ = json.Marshal(EditRequestAPI{
		TemplateID: 5, Prompt: "x", Seed: 1,
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 2},
	})
	res, err = http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var edit EditResponse
	if err := json.NewDecoder(res.Body).Decode(&edit); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if edit.StepsComputed != testModel.Steps {
		t.Fatalf("edit response: %+v", edit)
	}

	// Stats.
	res, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Completed != 1 {
		t.Fatalf("stats completed = %d", st.Completed)
	}

	// Bad method and bad JSON.
	res, _ = http.Get(ts.URL + "/v1/edits")
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/edits = %d", res.StatusCode)
	}
	res.Body.Close()
	res, _ = http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader([]byte("{")))
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d", res.StatusCode)
	}
	res.Body.Close()
}

func TestLatentSerializationRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := tensor.Randn(rng, 7, 5, 1)
	buf := serializeLatent(m)
	got := deserializeLatent(buf)
	if got == nil || !tensor.Equal(got, m) {
		t.Fatal("latent serialization round trip failed")
	}
	if deserializeLatent(nil) != nil {
		t.Fatal("nil buffer should fail")
	}
	if deserializeLatent(buf[:10]) != nil {
		t.Fatal("truncated buffer should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testModel
	bad.Hidden = 0
	if _, err := New(Config{Model: bad, Profile: perfmodel.SD21Paper}); err == nil {
		t.Fatal("bad model config accepted")
	}
}

func TestTieredCacheDirSurvivesEviction(t *testing.T) {
	// With a disk tier, a template evicted from host memory by LRU stages
	// back from disk transparently (§4.2 on the live path).
	s, err := New(Config{
		Model:   testModel,
		Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 2,
		Policy:   batching.MaskAware,
		Seed:     42,
		CacheDir: t.TempDir(),
		// Budget fits roughly one template, forcing eviction.
		CacheBudgetBytes: 100 << 10, // fits exactly one ~69 KiB template
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)

	prep, err := s.Prepare(PrepareRequest{TemplateID: 1, ImageSeed: 1, Prompt: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if prep.CacheBytes > 100<<10 {
		t.Skipf("template cache %d exceeds test budget", prep.CacheBytes)
	}
	if _, err := s.Prepare(PrepareRequest{TemplateID: 2, ImageSeed: 2, Prompt: "b"}); err != nil {
		t.Fatal(err)
	}
	// Template 1 is likely evicted now; editing it must still work.
	resp, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Prompt: "edit", Seed: 3,
		Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StepsComputed != testModel.Steps {
		t.Fatalf("edit after eviction failed: %+v", resp)
	}
}

func TestAdmissionControlRejectsWhenFull(t *testing.T) {
	// Slow the denoise steps down (kernel-speed-independent) so the burst
	// actually accumulates behind MaxBatch=1 instead of racing completions.
	inj := faults.New(7)
	inj.SetDelay(faults.StepStage, 10*time.Millisecond, 0)
	s, err := New(Config{
		Model:   testModel,
		Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 1, MaxQueue: 1,
		Policy: batching.MaskAware, Seed: 42,
		Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	prepareTemplate(t, s, 1)

	// Fire a burst; with MaxQueue=1 some must be rejected with
	// ErrOverloaded while at least one succeeds.
	const n = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok, rejected := 0, 0
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.SubmitEdit(context.Background(), EditRequestAPI{
				TemplateID: 1, Seed: uint64(i),
				Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: uint64(i)},
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrOverloaded):
				rejected++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no request admitted")
	}
	if rejected == 0 {
		t.Fatal("no request rejected despite MaxQueue=1 burst")
	}
	if ok+rejected != n {
		t.Fatalf("accounting: %d ok + %d rejected != %d", ok, rejected, n)
	}
}

func TestStatsWorkerQueueDepths(t *testing.T) {
	s := newTestServer(t, 3)
	st := s.Snapshot()
	if len(st.WorkerQueueDepths) != 3 {
		t.Fatalf("queue depths = %v, want 3 entries", st.WorkerQueueDepths)
	}
	for _, d := range st.WorkerQueueDepths {
		if d != 0 {
			t.Fatalf("idle server depth = %d", d)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, 2)
	prepareTemplate(t, s, 1)
	if _, err := s.SubmitEdit(context.Background(), EditRequestAPI{
		TemplateID: 1, Seed: 1, Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`flashps_requests_total{outcome="ok"} 1`,
		`flashps_request_stage_seconds_bucket{stage="request",le="+Inf"} 1`,
		`flashps_worker_queue_depth{worker="0"}`,
		"flashps_denoise_steps_total 5",
		"# TYPE flashps_cache_hits gauge",
		"# TYPE flashps_request_stage_seconds histogram",
		"flashps_batch_occupancy_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestHTTPOverloadedReturns429(t *testing.T) {
	slow := testModel
	slow.Name = "slow429"
	slow.Steps = 40
	// Slow each denoising step through the fault injector so the single
	// worker saturates deterministically, however fast the kernels are.
	inj := faults.New(1)
	inj.SetDelay(faults.StepStage, time.Millisecond, 0)
	s, err := New(Config{
		Model: slow, Profile: perfmodel.SD21Paper,
		Workers: 1, MaxBatch: 1, MaxQueue: 1,
		Policy: batching.MaskAware, Seed: 42, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(s.Close)
	prepareTemplate(t, s, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	fire := func(i int) int {
		body, _ := json.Marshal(EditRequestAPI{
			TemplateID: 1, Seed: uint64(i),
			Mask: MaskSpec{Type: "ratio", Ratio: 0.2, Seed: uint64(i)},
		})
		res, err := http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() { codes <- fire(i) }()
	}
	var got429, got200 bool
	for i := 0; i < 8; i++ {
		switch <-codes {
		case http.StatusTooManyRequests:
			got429 = true
		case http.StatusOK:
			got200 = true
		default:
		}
	}
	if !got429 || !got200 {
		t.Fatalf("expected a mix of 200 and 429 (got200=%v got429=%v)", got200, got429)
	}
}
