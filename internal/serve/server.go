package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flashps/internal/batching"
	"flashps/internal/cache"
	"flashps/internal/diffusion"
	"flashps/internal/faults"
	"flashps/internal/fleet"
	"flashps/internal/img"
	"flashps/internal/metrics"
	"flashps/internal/model"
	"flashps/internal/obs"
	"flashps/internal/perfmodel"
)

// Config parameterizes the serving plane.
type Config struct {
	// Model is the numeric engine configuration.
	Model model.Config
	// Profile is the paper-scale profile backing the mask-aware
	// scheduler's latency regressions.
	Profile perfmodel.ModelProfile
	// Workers is the number of engine replicas ("GPU processes").
	Workers int
	// MaxBatch bounds each worker's running batch.
	MaxBatch int
	// PreWorkers / PostWorkers size the CPU stage pools.
	PreWorkers, PostWorkers int
	// CacheBudgetBytes bounds the host activation cache (0 = 1 GiB).
	CacheBudgetBytes int64
	// CacheDir, when set, enables the disk tier (§4.2): template caches
	// are written through to disk and staged back after host LRU eviction.
	CacheDir string
	// Policy routes requests across workers.
	Policy batching.Policy
	// Discipline selects the batching discipline the engine loops run
	// under; the zero value is the paper's disaggregated continuous
	// batching. Static admits only into an empty batch; strawman-cb runs
	// postprocessing inline on the engine loop (the Fig 10-Top defect),
	// for apples-to-apples comparison against the simulator.
	Discipline batching.Discipline
	// StepPolicy is the default adaptive step-caching policy applied to
	// requests that do not name one ("block", "layer", "timestep",
	// "combined"; "" or "off" disables). It composes with the flashps/full
	// modes; TeaCache and naive-skip requests ignore the default.
	StepPolicy string
	// StepPolicyByClass maps SLO-class names (obs.DefaultSLOClasses:
	// "interactive", "standard", "relaxed") to step-policy names, letting
	// tight-deadline small-mask classes run leaner policies than relaxed
	// full-image edits. It is consulted after the request's own policy
	// field and before StepPolicy.
	StepPolicyByClass map[string]string
	// MaxQueue, when > 0, bounds each worker's outstanding requests;
	// submissions beyond it first try to shed a larger-mask outstanding
	// job and otherwise are rejected immediately (admission control /
	// backpressure) instead of queueing unboundedly.
	MaxQueue int
	// TraceRing sizes the span trace ring buffer (spans retained for
	// /debug/traces); 0 uses obs.DefaultTraceRing.
	TraceRing int
	// FlightDir, when set, arms the flight-recorder sink: whenever an
	// alert pages or a fault rule trips, the plane's flight snapshot is
	// written to <FlightDir>/flightrecorder.json beside the other
	// artifacts (the file is overwritten on each trip; the snapshot's
	// reason field says why the latest dump was taken).
	FlightDir string
	// Seed fixes engine weights; all workers share it so template caches
	// are valid on every replica.
	Seed uint64

	// MaxRetries bounds how many times a job orphaned by a worker crash is
	// re-executed on an alternate replica (0 = default 2; negative
	// disables retries). Retries are idempotent: the job re-runs its
	// deterministic seed-driven pipeline from preprocessing.
	MaxRetries int
	// RetryBackoff is the base of the capped exponential backoff before
	// each retry attempt (0 = default 25ms; capped at 8× the base).
	RetryBackoff time.Duration
	// WorkerRestartDelay is how long a crashed worker loop waits before
	// restarting (0 = default 50ms). While down, the scheduler does not
	// route to the replica; /healthz reports "degraded" when no routable
	// replica is left alive.
	WorkerRestartDelay time.Duration
	// CacheLoadTimeout, when > 0, degrades a flashps-mode request to full
	// compute when its template-cache load takes longer than this,
	// instead of stalling the cached path.
	CacheLoadTimeout time.Duration
	// Faults optionally injects failures and delays into the request path
	// (tests, load generator); nil injects nothing.
	Faults *faults.Injector

	// Router selects the fleet routing policy (DESIGN.md §12): "" or
	// "core" delegates placement to the batching core's policy (the
	// pre-fleet behavior), "least-loaded" and "affinity" route through the
	// fleet controller.
	Router string
	// MaxReplicas bounds the worker pool the autoscaler can grow into
	// (0 or < Workers: Workers). Replicas beyond Workers start Down —
	// their engine loops run but the router sends them no traffic until a
	// scale-up activates them.
	MaxReplicas int
	// AdmitRate/AdmitBurst parameterize the fleet admission token bucket
	// in requests per second (Rate ≤ 0 disables rate limiting).
	AdmitRate  float64
	AdmitBurst float64
	// AdmitMinServiceMS arms the deadline-feasibility reject: a request
	// whose effective deadline is below this floor is rejected up front
	// (≤ 0 disables).
	AdmitMinServiceMS float64
	// Autoscale arms the SLO-driven autoscaler over [Workers, pool].
	Autoscale fleet.AutoscaleConfig
	// StagedTemplates, when > 0, bounds each worker's replica-local staged
	// template set: the first request for a template on a replica pays a
	// staging pass over the whole cache entry (recorded as a
	// "replica_stage" span and cost sample), making template-affinity
	// routing's benefit measurable on the live plane. 0 disables staging.
	StagedTemplates int
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.PreWorkers <= 0 {
		c.PreWorkers = 2
	}
	if c.PostWorkers <= 0 {
		c.PostWorkers = 2
	}
	if c.CacheBudgetBytes <= 0 {
		c.CacheBudgetBytes = 1 << 30
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.WorkerRestartDelay <= 0 {
		c.WorkerRestartDelay = 50 * time.Millisecond
	}
}

// job is one in-flight edit request.
type job struct {
	id      uint64
	api     EditRequestAPI
	mode    diffusion.EditMode
	ratio   float64
	session *diffusion.EditSession
	worker  *worker

	// ctx carries the caller's cancellation plus the optional deadline_ms;
	// the pipeline checks it at every stage and step boundary.
	ctx        context.Context
	cancel     context.CancelFunc
	deadlineMS int64

	// responded guards the single response delivery: the pipeline, the
	// retry path, load shedding, and the abandoning waiter race for it.
	responded atomic.Bool
	// attempts counts crash-driven re-executions.
	attempts atomic.Int32

	// degraded* are written by the preprocessing stage and read after the
	// job flows through channels (happens-before via channel handoff).
	degraded       bool
	degradedReason string

	// Scheduler-visible load fields: ratioHint is immutable after submit;
	// remaining is updated atomically by the engine loop.
	ratioHint float64
	remaining atomic.Int32

	arrival time.Time
	ready   time.Time
	admit   time.Time
	finish  time.Time

	latentBytes []byte
	resp        chan jobResult
	handoff     time.Time
}

type jobResult struct {
	resp EditResponse
	err  error
}

// deliver completes the job exactly once; later deliveries are dropped.
// It reports whether this call won the race (so callers count the
// terminal outcome exactly once).
func (j *job) deliver(res jobResult) bool {
	if !j.responded.CompareAndSwap(false, true) {
		return false
	}
	j.resp <- res // buffered; never blocks
	return true
}

// aborted reports that the job no longer needs work: it has been
// completed, shed, abandoned, or its deadline expired. Stages and the
// engine loop consult it at boundaries to evict dead work early.
func (j *job) aborted() bool {
	if j.responded.Load() {
		return true
	}
	return j.ctx != nil && j.ctx.Err() != nil
}

// Server is the multi-worker serving plane.
type Server struct {
	cfg     Config
	store   *cache.TieredStore
	faults  *faults.Injector
	workers []*worker

	// engProfile describes the numeric engine actually executing (not the
	// paper-scale scoring profile): its dimensions feed the mask-aware
	// FLOP features on recorded cost samples, so a telemetry fit predicts
	// this engine.
	engProfile perfmodel.ModelProfile

	// core makes every placement, admission, and shedding decision and
	// records them in its decision log (see Decisions). It is the same
	// code the simulator drives.
	core *batching.Core

	// ctrl is the fleet control plane: admission, routing (when a fleet
	// router is selected), replica lifecycle, and the SLO-driven
	// autoscaler. It is always present — with the zero fleet config it
	// admits everything and marks every worker Active — so the request
	// path has no nil checks. It is the same code the virtual-time
	// drivers run (DESIGN.md §12).
	ctrl       *fleet.Controller
	routerKind fleet.RouterKind

	preCh  chan *job
	postCh chan *job

	// Recorders back the JSON /v1/stats snapshot; they are SyncRecorders
	// because the engine loops, CPU pools, and frontend all record
	// concurrently. The registry-backed instruments live in obs.
	total     metrics.SyncRecorder
	queue     metrics.SyncRecorder
	inference metrics.SyncRecorder
	decision  metrics.SyncRecorder // seconds
	organize  metrics.SyncRecorder
	serialize metrics.SyncRecorder
	handoff   metrics.SyncRecorder
	completed atomic.Int64

	obs     *serveObs
	started atomic.Bool

	nextID atomic.Uint64
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a serving plane; call Start before submitting work and Close
// when done.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if _, err := diffusion.PolicyByName(cfg.StepPolicy); err != nil {
		return nil, fmt.Errorf("serve: step policy: %v", err)
	}
	for class, name := range cfg.StepPolicyByClass {
		if _, err := diffusion.PolicyByName(name); err != nil {
			return nil, fmt.Errorf("serve: step policy for class %q: %v", class, err)
		}
	}
	routerKind, err := fleet.ParseRouter(cfg.Router)
	if err != nil {
		return nil, fmt.Errorf("serve: %v", err)
	}
	est, err := perfmodel.ServingEstimator(cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sObs := newServeObs(cfg.TraceRing)
	if cfg.FlightDir != "" {
		dir := cfg.FlightDir
		sObs.plane.SetFlightSink(func(snap obs.FlightSnapshot) {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return
			}
			var b strings.Builder
			if err := snap.WriteJSON(&b); err != nil {
				return
			}
			_ = os.WriteFile(filepath.Join(dir, obs.ArtifactFlightRecorder),
				[]byte(b.String()), 0o644)
		})
	}
	// The tiered store reports into the plane as it operates: per-tier
	// op/byte counters, and timed spill transfers as calibration cost
	// samples (loads fit the disk staging law, stores the spill law).
	store, err := cache.NewTieredStore(cache.TieredConfig{
		RAMBudget: cfg.CacheBudgetBytes,
		SpillDir:  cfg.CacheDir,
		Policy:    cache.PolicyCostAware,
		Observer:  sObs.plane.CacheTier,
		Transfer: func(op string, bytes int64, seconds float64) {
			stage := obs.CostStageCacheStage
			if op == "store" {
				stage = obs.CostStageCacheSpill
			}
			sObs.cost(obs.CostSample{Stage: stage, Units: 1,
				Bytes: float64(bytes), Tier: "disk", Seconds: seconds})
		},
	})
	if err != nil {
		return nil, err
	}
	// The replica pool: Workers start Active; any headroom up to
	// MaxReplicas starts Down, invisible to routing until the autoscaler
	// activates it.
	pool := cfg.Workers
	if cfg.MaxReplicas > pool {
		pool = cfg.MaxReplicas
	}
	// Register the fleet metric families only when some fleet feature is
	// actually in play, so a plain single-pool server keeps the pre-fleet
	// exposition byte-identically.
	var fleetMetrics *obs.FleetMetrics
	if routerKind != fleet.RouterCore || pool > cfg.Workers ||
		cfg.Autoscale.Enabled || cfg.AdmitRate > 0 || cfg.AdmitMinServiceMS > 0 {
		fleetMetrics = sObs.plane.Fleet()
	}
	ctrl, err := fleet.NewController(fleet.Config{
		Replicas:          cfg.Workers,
		MaxReplicas:       pool,
		Router:            routerKind,
		TokenRate:         cfg.AdmitRate,
		TokenBurst:        cfg.AdmitBurst,
		MinServiceSeconds: cfg.AdmitMinServiceMS / 1000,
		QueueHeadroom:     cfg.MaxBatch,
		// The affinity score's terms come from the same paper-scale
		// profile: a miss costs one disk staging, queued work is priced at
		// the full per-request service time.
		MissPenaltySeconds: cfg.Profile.DiskLoadLatency(),
		ServiceSeconds:     cfg.Profile.StepLatencyFull(1) * float64(cfg.Profile.Steps),
		Autoscale:          cfg.Autoscale,
		Metrics:            fleetMetrics,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Mirror the core's decision stream into the telemetry plane's
	// per-kind counters as decisions are made.
	dlog := new(batching.DecisionLog)
	dlog.SetSink(func(d batching.Decision) { sObs.plane.Decision(d.Kind.String()) })
	s := &Server{
		cfg:    cfg,
		store:  store,
		faults: cfg.Faults,
		engProfile: perfmodel.EngineProfile(cfg.Model.Name, cfg.Model.NumBlocks,
			cfg.Model.Tokens(), cfg.Model.Hidden, cfg.Model.FFNMult,
			cfg.Model.Steps, cfg.MaxBatch),
		core: batching.NewCore(batching.CoreConfig{
			Policy:     cfg.Policy,
			Discipline: cfg.Discipline,
			Estimator:  est,
			MaxBatch:   cfg.MaxBatch,
			Seed:       cfg.Seed,
			Log:        dlog,
		}),
		preCh:      make(chan *job, 1024),
		postCh:     make(chan *job, 1024),
		obs:        sObs,
		ctrl:       ctrl,
		routerKind: routerKind,
		ctx:        ctx,
		cancel:     cancel,
	}
	s.obs.bindStore(store)
	// Warm-start prefetch: promote templates spilled by a previous process
	// into RAM while the server boots.
	store.Prefetch(store.SpilledIDs()...)
	for i := 0; i < pool; i++ {
		eng, err := diffusion.NewEngine(cfg.Model, cfg.Seed)
		if err != nil {
			cancel()
			return nil, err
		}
		s.workers = append(s.workers, newWorker(i, eng, s))
		s.obs.setOutstanding(i, 0)
	}
	return s, nil
}

// Start launches the CPU pools and supervised worker engine loops.
func (s *Server) Start() {
	for i := 0; i < s.cfg.PreWorkers; i++ {
		s.wg.Add(1)
		go s.preLoop()
	}
	for i := 0; i < s.cfg.PostWorkers; i++ {
		s.wg.Add(1)
		go s.postLoop()
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.run()
	}
	// Periodic sampler tick: the live plane advances its time series on
	// wall time (the replay drivers instead tick at completion events so
	// their virtual event queues stay finite).
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.ctx.Done():
				return
			case <-t.C:
				s.obs.plane.Tick()
			}
		}
	}()
	// Autoscaler ticker: the same Controller.Tick the virtual-time drivers
	// chain on their simclock, here driven by wall time mapped onto the
	// plane's clock axis.
	if s.ctrl.AutoscaleEnabled() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(time.Duration(s.ctrl.TickInterval() * float64(time.Second)))
			defer t.Stop()
			for {
				select {
				case <-s.ctx.Done():
					return
				case <-t.C:
					depths := make([]int, len(s.workers))
					for i, w := range s.workers {
						depths[i] = w.outstandingCount()
					}
					s.ctrl.Tick(s.obs.wall.Seconds(time.Now()), depths)
				}
			}
		}()
	}
	s.started.Store(true)
}

// Registry exposes the metrics registry backing /metrics, so embedding
// services can add their own instruments or scrape programmatically.
func (s *Server) Registry() *obs.Registry { return s.obs.reg }

// Tracer exposes the span tracer backing /debug/traces.
func (s *Server) Tracer() *obs.Tracer { return s.obs.tracer }

// Obs exposes the full telemetry plane (SLO tracker, windowed quantiles,
// time-series sampler, artifact dumps) backing /metrics and /debug/dash.
func (s *Server) Obs() *obs.Plane { return s.obs.plane }

// EngineProfile returns the ModelProfile describing the numeric engine this
// server executes — the profile whose dimensions feed the FLOP features on
// recorded cost samples. Calibration (perfmodel.FitFromTelemetry) must fit
// against this same profile for the features to line up.
func (s *Server) EngineProfile() perfmodel.ModelProfile { return s.engProfile }

// blockFLOPs is the mask-aware FLOP feature for one transformer-block
// forward pass of one session, from the engine profile: cached modes
// compute masked rows, full and teacache compute every row. Multiplied by
// the session's computed-block count it yields the step's actual FLOPs —
// reused blocks and TeaCache-skipped steps contribute zero, so the cost
// samples stay honest for calibration. The digital twin computes the
// identical per-block feature at prediction time.
func (s *Server) blockFLOPs(j *job) float64 {
	mode := j.mode
	if j.degraded {
		mode = diffusion.EditFull
	}
	switch mode {
	case diffusion.EditCachedY, diffusion.EditCachedKV, diffusion.EditNaiveSkip:
		return s.engProfile.BlockFLOPsMasked(j.ratio)
	default: // EditFull, EditTeaCache
		return s.engProfile.BlockFLOPsFull()
	}
}

// stepPolicyFor resolves the effective step-caching policy for a job:
// the request's own policy field, then the SLO-class mapping keyed by the
// rasterized mask ratio, then the server default. Server-side defaults are
// skipped for modes a policy cannot compose with, so a plain teacache
// request never trips the engine's composability check.
func (s *Server) stepPolicyFor(j *job) string {
	if p := j.api.Policy; p != "" {
		return p
	}
	if j.mode == diffusion.EditTeaCache || j.mode == diffusion.EditNaiveSkip {
		return ""
	}
	if len(s.cfg.StepPolicyByClass) > 0 {
		class := obs.ClassFor(obs.DefaultSLOClasses, j.ratio)
		if p, ok := s.cfg.StepPolicyByClass[class.Name]; ok {
			return p
		}
	}
	return s.cfg.StepPolicy
}

// Decisions returns the batching core's decision sequence so far: every
// placement, admission, shed, and rejection, in order. Tests and operators
// observe scheduling behavior through this log instead of worker internals.
func (s *Server) Decisions() []batching.Decision { return s.core.Decisions() }

// Close stops all goroutines, waits for them, and drains the template
// store's write-back queue so every prepared template is durable on the
// spill tier.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	s.store.Close()
}

// Prepare registers a template: renders the synthetic template image, runs
// the cache-population pass and stores the activation cache. Prepare is
// idempotent on TemplateID — re-preparing an existing id returns the
// existing cache (Reused=true) without recomputation; delete it first to
// re-prepare with different content.
func (s *Server) Prepare(req PrepareRequest) (PrepareResponse, error) {
	if len(s.workers) == 0 {
		return PrepareResponse{}, apiErrorf(CodeInternal, false, "serve: no workers")
	}
	// Idempotency check doubles as prefetch-on-prepare: a template that
	// only lives on the spill tier is promoted into RAM here, ahead of
	// the edits the prepare call foreshadows.
	if tc, _ := s.store.GetTracked(req.TemplateID); tc != nil {
		return PrepareResponse{
			TemplateID: req.TemplateID,
			CacheBytes: tc.SizeBytes(),
			Reused:     true,
		}, nil
	}
	eng := s.workers[0].eng
	cfg := s.cfg.Model
	h, w := eng.Codec.ImageSize(cfg.LatentH, cfg.LatentW)
	var template *img.Image
	if len(req.ImagePNG) > 0 {
		decoded, err := img.Decode(req.ImagePNG)
		if err != nil {
			return PrepareResponse{}, apiErrorf(CodeInvalidRequest, false, "template image: %v", err)
		}
		template = img.Resize(decoded, h, w)
	} else {
		template = img.SynthTemplate(req.ImageSeed, h, w)
	}
	start := time.Now()
	tc, _, err := eng.PrepareTemplate(req.TemplateID, template, req.Prompt, req.RecordKV)
	if err != nil {
		return PrepareResponse{}, asAPIError(err)
	}
	elapsed := time.Since(start)
	// The measured prepare time is the recompute-cost term of the store's
	// cost-aware eviction score: losing this template costs this long.
	if err := s.store.PutCost(req.TemplateID, tc, elapsed.Seconds()); err != nil {
		return PrepareResponse{}, asAPIError(err)
	}
	return PrepareResponse{
		TemplateID: req.TemplateID,
		CacheBytes: tc.SizeBytes(),
		PrepareMS:  float64(elapsed.Microseconds()) / 1000,
	}, nil
}

// ListTemplates returns the cached templates across tiers, ascending by id.
func (s *Server) ListTemplates() []TemplateInfo {
	infos := s.store.List()
	out := make([]TemplateInfo, len(infos))
	for i, e := range infos {
		out[i] = TemplateInfo{
			TemplateID: e.ID, Bytes: e.Bytes, Tier: e.Tier,
			Pinned: e.Pinned, Hits: e.Hits,
			LastUsedMS: lastUsedMS(e.LastUsed),
		}
	}
	return out
}

func lastUsedMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// DeleteTemplate invalidates a template's host and disk cache entries.
// Pinned templates refuse with a template_pinned APIError; unknown ids
// return template_not_found.
func (s *Server) DeleteTemplate(id uint64) error {
	if err := s.store.Delete(id); err != nil {
		return asAPIError(err)
	}
	return nil
}

// PinTemplate makes a template eviction-proof, promoting it into RAM if
// it only lives on the spill tier.
func (s *Server) PinTemplate(id uint64) error {
	if err := s.store.Pin(id); err != nil {
		return asAPIError(err)
	}
	return nil
}

// UnpinTemplate clears a pin.
func (s *Server) UnpinTemplate(id uint64) error {
	if err := s.store.Unpin(id); err != nil {
		return asAPIError(err)
	}
	return nil
}

// CacheStats returns the per-tier cache statistics for /v1/cache/stats.
func (s *Server) CacheStats() CacheStatsResponse {
	tiers := s.store.Stats()
	out := CacheStatsResponse{Tiers: make([]CacheTierStats, len(tiers))}
	for i, ts := range tiers {
		hitRate := 0.0
		if ts.Hits+ts.Misses > 0 {
			hitRate = float64(ts.Hits) / float64(ts.Hits+ts.Misses)
		}
		out.Tiers[i] = CacheTierStats{
			Tier: ts.Tier, CapacityBytes: ts.CapacityBytes,
			UsedBytes: ts.UsedBytes, LogicalBytes: ts.LogicalBytes,
			Entries: ts.Entries, Pinned: ts.Pinned,
			Hits: ts.Hits, Misses: ts.Misses, Evictions: ts.Evictions,
			HitRate: hitRate, Blocks: ts.Blocks, SharedBlocks: ts.SharedBlocks,
			DedupRatio: ts.DedupRatio,
		}
	}
	return out
}

// SubmitEdit serves one edit request synchronously: route → preprocess →
// continuous-batched denoising → postprocess. The caller's ctx plus the
// optional DeadlineMS field bound the request: on expiry SubmitEdit
// returns immediately with a deadline_exceeded/canceled APIError and the
// pipeline evicts the job at its next stage or step boundary.
func (s *Server) SubmitEdit(ctx context.Context, api EditRequestAPI) (EditResponse, error) {
	mode, err := parseMode(api.Mode)
	if err != nil {
		return EditResponse{}, apiErrorf(CodeInvalidRequest, false, "%v", err)
	}
	if _, err := diffusion.PolicyByName(api.Policy); err != nil {
		return EditResponse{}, apiErrorf(CodeInvalidRequest, false, "%v", err)
	}
	j := &job{
		id:        s.nextID.Add(1),
		api:       api,
		mode:      mode,
		arrival:   time.Now(),
		resp:      make(chan jobResult, 1),
		ratioHint: s.maskRatioHint(api.Mask),
	}
	j.remaining.Store(int32(s.cfg.Model.Steps))
	if api.DeadlineMS > 0 {
		j.deadlineMS = api.DeadlineMS
		j.ctx, j.cancel = context.WithTimeout(ctx, time.Duration(api.DeadlineMS)*time.Millisecond)
	} else {
		j.ctx, j.cancel = context.WithCancel(ctx)
	}
	// SubmitEdit is synchronous: once it returns, the request is finished
	// or abandoned either way, and cancel tells the pipeline to evict.
	defer j.cancel()

	// Fleet admission (DESIGN.md §12): the deadline-feasibility check and
	// the token bucket run before any routing or queueing work. With the
	// zero fleet config both are disabled and every request passes.
	if ok, reason := s.ctrl.Admit(fleet.Request{
		ID: j.id, Template: api.TemplateID, MaskRatio: j.ratioHint,
		DeadlineSeconds: float64(api.DeadlineMS) / 1000,
	}, s.obs.wall.Seconds(time.Now())); !ok {
		s.obs.outcome(outcomeRejected)
		if reason == "deadline_infeasible" {
			return EditResponse{}, apiErrorf(CodeDeadlineExceeded, false,
				"deadline of %d ms is below the admission service floor", api.DeadlineMS)
		}
		return EditResponse{}, apiErrorf(CodeOverloaded, true,
			"admission rate limit exceeded")
	}

	// Route (Algorithm 2) across live replicas, measuring the paper's
	// §6.6 decision overhead.
	t0 := time.Now()
	idx, rerr := s.route(j)
	decision := time.Since(t0)
	if rerr != nil {
		s.obs.outcome(outcomeRejected)
		return EditResponse{}, rerr
	}
	s.obs.span(j.id, stageSchedule, idx, t0, decision,
		map[string]float64{"mask_ratio_hint": j.ratioHint})
	s.obs.cost(obs.CostSample{Stage: obs.CostStageSchedule, Units: 1,
		Seconds: decision.Seconds()})

	j.worker = s.workers[idx]
	if !j.worker.tryAddOutstanding(j, s.cfg.MaxQueue) {
		// Overload (the atomic check-and-enqueue refused): shed the
		// largest-mask outstanding job on this replica if it is strictly
		// larger than the newcomer; otherwise reject the newcomer (blind
		// rejection only as the last resort). The core picks the victim
		// and logs the decision. After a shed the newcomer joins over the
		// limit; the victim releases its slot at the next step boundary.
		cands, jobs := j.worker.shedCandidates()
		v := s.core.ShedVictim(j.worker.id, cands,
			batching.Item{ID: j.id, MaskRatio: j.ratioHint})
		if v < 0 {
			s.obs.outcome(outcomeRejected)
			return EditResponse{}, ErrOverloaded
		}
		s.shed(jobs[v])
		j.worker.addOutstanding(j)
	}
	s.decision.Add(decision.Seconds())

	select {
	case s.preCh <- j:
	case <-j.ctx.Done():
		j.worker.removeOutstanding(j)
		return EditResponse{}, s.ctxError(j)
	case <-s.ctx.Done():
		j.worker.removeOutstanding(j)
		return EditResponse{}, apiErrorf(CodeInternal, false, "serve: server closed")
	}

	select {
	case res := <-j.resp:
		if res.err != nil {
			return EditResponse{}, asAPIError(res.err)
		}
		return res.resp, nil
	case <-j.ctx.Done():
		if j.responded.CompareAndSwap(false, true) {
			// No result will ever arrive; the pipeline evicts the job at
			// its next boundary.
			return EditResponse{}, s.ctxError(j)
		}
		// A result won the race; take it.
		res := <-j.resp
		if res.err != nil {
			return EditResponse{}, asAPIError(res.err)
		}
		return res.resp, nil
	case <-s.ctx.Done():
		j.responded.CompareAndSwap(false, true)
		return EditResponse{}, apiErrorf(CodeInternal, false, "serve: server closed")
	}
}

// ctxError converts the job's expired context into the terminal APIError,
// counting the outcome exactly once (callers only invoke it after winning
// the responded CAS or before any pipeline handoff).
func (s *Server) ctxError(j *job) error {
	worker := -1
	if j.worker != nil {
		worker = j.worker.id
	}
	if j.ctx.Err() == context.DeadlineExceeded {
		s.obs.deadlineExceeded.Inc()
		s.obs.outcome(outcomeDeadline)
		s.obs.plane.RecordFlight("deadline_miss", j.id, worker,
			fmt.Sprintf("deadline_ms=%d", j.deadlineMS))
		return apiErrorf(CodeDeadlineExceeded, true,
			"deadline of %d ms exceeded", j.deadlineMS)
	}
	s.obs.outcome(outcomeCanceled)
	s.obs.plane.RecordFlight("canceled", j.id, worker, "client canceled")
	return apiErrorf(CodeCanceled, false, "request canceled by client")
}

// route picks a live replica for the job. Under a fleet router
// (least-loaded, affinity) the fleet controller chooses among Active live
// replicas and the choice is recorded into the core's decision log as a
// fixed placement; under the core router the batching core's policy
// (Algorithm 2 or a baseline) places across live routable replicas as
// before, with the controller informed for affinity tracking. Either path
// returns an overloaded (retryable) error when no replica can take work.
func (s *Server) route(j *job) (int, error) {
	if s.routerKind != fleet.RouterCore {
		depths := make([]int, len(s.workers))
		alive := make([]bool, len(s.workers))
		for i, w := range s.workers {
			depths[i] = w.outstandingCount()
			alive[i] = w.alive.Load()
		}
		idx, _, err := s.ctrl.Route(fleet.Request{
			ID: j.id, Template: j.api.TemplateID, MaskRatio: j.ratioHint,
		}, depths, alive)
		if err != nil {
			return 0, apiErrorf(CodeOverloaded, true, "no live worker replicas")
		}
		s.core.PlaceFixed(batching.Item{
			ID: j.id, MaskRatio: j.ratioHint, Steps: s.cfg.Model.Steps,
		}, idx, s.ctrl.ActiveCount())
		return idx, nil
	}
	idxs := make([]int, 0, len(s.workers))
	views := make([]batching.WorkerView, 0, len(s.workers))
	for i, w := range s.workers {
		if !w.alive.Load() || !s.ctrl.Routable(i) {
			continue
		}
		idxs = append(idxs, i)
		views = append(views, w.view())
	}
	if len(idxs) == 0 {
		return 0, apiErrorf(CodeOverloaded, true, "no live worker replicas")
	}
	idx := s.core.Place(views, idxs, batching.Item{
		ID: j.id, MaskRatio: j.ratioHint, Steps: s.cfg.Model.Steps,
	})
	s.ctrl.NoteRoute(idx, j.api.TemplateID)
	return idx, nil
}

// shed evicts an outstanding job in favor of smaller work under overload:
// the victim's waiter receives an overloaded envelope and the pipeline
// drops the job at its next boundary.
func (s *Server) shed(victim *job) {
	if victim.deliver(jobResult{err: apiErrorf(CodeOverloaded, true,
		"shed under overload for smaller-mask work (mask ratio %.2f)", victim.ratioHint)}) {
		s.obs.outcome(outcomeShed)
		s.obs.span(victim.id, stageEvict, victim.worker.id, time.Now(), 0,
			map[string]float64{"shed": 1, "mask_ratio_hint": victim.ratioHint})
		s.obs.plane.RecordFlight("shed", victim.id, victim.worker.id,
			fmt.Sprintf("mask_ratio=%.2f", victim.ratioHint))
	}
	victim.worker.removeOutstanding(victim)
}

// rescueBatch re-routes the jobs a crashed worker loop was running:
// each is retried on an alternate live replica with capped exponential
// backoff, at most cfg.MaxRetries times, idempotently (the deterministic
// seed-driven pipeline re-runs from preprocessing). Runs on the crashed
// worker's supervisor goroutine, which owns w.running.
func (s *Server) rescueBatch(w *worker) {
	batch := w.running
	w.running = nil
	for _, j := range batch {
		w.removeOutstanding(j)
		if j.aborted() {
			continue
		}
		attempt := int(j.attempts.Add(1))
		if attempt > s.cfg.MaxRetries {
			if j.deliver(jobResult{err: apiErrorf(CodeInternal, true,
				"worker %d crashed; retry budget (%d) exhausted", w.id, s.cfg.MaxRetries)}) {
				s.obs.outcome(outcomeError)
			}
			continue
		}
		s.obs.retries.Inc()
		backoff := s.cfg.RetryBackoff << (attempt - 1)
		if max := 8 * s.cfg.RetryBackoff; backoff > max {
			backoff = max
		}
		s.wg.Add(1)
		go func(j *job, d time.Duration) {
			defer s.wg.Done()
			select {
			case <-time.After(d):
			case <-s.ctx.Done():
				return
			}
			s.resubmit(j)
		}(j, backoff)
	}
}

// resubmit re-enters a rescued job at the preprocessing stage on a live
// replica.
func (s *Server) resubmit(j *job) {
	if j.aborted() {
		return
	}
	idx, err := s.route(j)
	if err != nil {
		if j.deliver(jobResult{err: err}) {
			s.obs.outcome(outcomeError)
		}
		return
	}
	j.worker = s.workers[idx]
	j.session = nil
	j.degraded, j.degradedReason = false, ""
	j.worker.addOutstanding(j)
	select {
	case s.preCh <- j:
	case <-s.ctx.Done():
		j.worker.removeOutstanding(j)
	}
}

// maskRatioHint estimates a request's mask ratio before rasterization, for
// routing purposes.
func (s *Server) maskRatioHint(m MaskSpec) float64 {
	grid := float64(s.cfg.Model.LatentH * s.cfg.Model.LatentW)
	switch m.Type {
	case "ratio":
		return m.Ratio
	case "rect", "ellipse":
		area := float64((m.Y1 - m.Y0) * (m.X1 - m.X0))
		if m.Type == "ellipse" {
			area *= 0.785 // π/4
		}
		ratio := area / grid
		if ratio < 0 {
			ratio = 0
		}
		if ratio > 1 {
			ratio = 1
		}
		return ratio
	case "full":
		return 1
	default:
		return 0.2
	}
}

func parseMode(mode string) (diffusion.EditMode, error) {
	switch mode {
	case "", "flashps":
		return diffusion.EditCachedY, nil
	case "full":
		return diffusion.EditFull, nil
	case "naive":
		return diffusion.EditNaiveSkip, nil
	case "teacache":
		return diffusion.EditTeaCache, nil
	default:
		return 0, fmt.Errorf("serve: unknown mode %q", mode)
	}
}

// preLoop is the preprocessing CPU pool: rasterize the mask, fetch the
// template cache and open the edit session, then hand the job to its
// worker's ready queue. Jobs whose deadline expired (or that were shed)
// are evicted here instead of doing any work.
func (s *Server) preLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.preCh:
			if j.aborted() {
				s.evict(j, stagePreprocess)
				continue
			}
			if d := s.faults.Delay(faults.PreStage); d > 0 {
				sleepCtx(j.ctx, d)
			}
			t0 := time.Now()
			err := s.preprocess(j)
			pre := time.Since(t0)
			s.obs.span(j.id, stagePreprocess, j.worker.id, t0, pre,
				map[string]float64{"mask_ratio": j.ratio})
			if err != nil {
				j.worker.removeOutstanding(j)
				if j.deliver(jobResult{err: err}) {
					s.obs.outcome(outcomeError)
				}
				continue
			}
			s.obs.cost(obs.CostSample{Stage: obs.CostStagePreprocess, Units: 1,
				MaskSum: j.ratio, Seconds: pre.Seconds()})
			j.ready = time.Now()
			select {
			case j.worker.readyCh <- j:
			case <-s.ctx.Done():
				return
			}
		}
	}
}

// degradeReasonFor distinguishes an injected load failure from a slow
// load exceeding the configured timeout.
const (
	degradeCacheFailed  = "cache_load_failed"
	degradeCacheTimeout = "cache_load_timeout"
)

func (s *Server) preprocess(j *job) error {
	cfg := s.cfg.Model
	m, err := j.api.Mask.Build(cfg.LatentH, cfg.LatentW)
	if err != nil {
		return apiErrorf(CodeInvalidRequest, false, "%v", err)
	}
	j.ratio = m.Ratio()
	t0 := time.Now()
	if d := s.faults.Delay(faults.CacheLoad); d > 0 {
		sleepCtx(j.ctx, d)
	}
	tc, loaded := s.store.GetTracked(j.api.TemplateID)
	loadFailed := s.faults.Fire(faults.CacheLoad)
	elapsed := time.Since(t0)
	hit := 1.0
	if tc == nil {
		hit = 0
	}
	s.obs.span(j.id, stageCacheLoad, j.worker.id, t0, elapsed,
		map[string]float64{"template": float64(j.api.TemplateID), "hit": hit})
	if tc != nil {
		// Feed the serving mask ratio into the store's cost-aware score,
		// and record the load with the tier that actually served it so
		// the fit can separate host hits from disk promotions.
		s.store.Observe(j.api.TemplateID, j.ratio)
		s.obs.cost(obs.CostSample{Stage: obs.CostStageCacheLoad, Units: 1,
			Bytes: float64(tc.SizeBytes()), Tier: loaded.Tier, Seconds: elapsed.Seconds()})
	}
	if tc == nil {
		return apiErrorf(CodeTemplateNotFound, false,
			"template %d not prepared", j.api.TemplateID)
	}
	// Graceful degradation: a failed or slow cache load must not kill a
	// flashps-mode request — fall back to full compute and record why.
	mode := j.mode
	if mode == diffusion.EditCachedY || mode == diffusion.EditCachedKV {
		switch {
		case loadFailed:
			mode = diffusion.EditFull
			j.degraded, j.degradedReason = true, degradeCacheFailed
		case s.cfg.CacheLoadTimeout > 0 && elapsed > s.cfg.CacheLoadTimeout:
			mode = diffusion.EditFull
			j.degraded, j.degradedReason = true, degradeCacheTimeout
		}
		if j.degraded {
			s.obs.degraded.Inc()
			s.obs.plane.RecordFlight("degraded", j.id, j.worker.id, j.degradedReason)
			if loadFailed {
				// A fault rule fired: dump the flight recorder so the
				// artifact pins the request that hit it.
				s.obs.plane.TripFlight("fault:" + j.degradedReason)
			}
		}
	}
	// Replica-local staging (fleet mode): the first request for this
	// template on this replica pays a pass over the whole cache entry.
	// Affinity routing exists to keep paying this at most once per
	// (replica, template).
	if s.cfg.StagedTemplates > 0 {
		t1 := time.Now()
		if stagedNow, bytes := j.worker.ensureStaged(tc, s.cfg.StagedTemplates); stagedNow {
			d := time.Since(t1)
			s.obs.stagings.Inc()
			s.obs.span(j.id, stageReplicaStage, j.worker.id, t1, d,
				map[string]float64{"template": float64(j.api.TemplateID), "bytes": float64(bytes)})
			s.obs.cost(obs.CostSample{Stage: obs.CostStageReplicaStage, Units: 1,
				Bytes: float64(bytes), Seconds: d.Seconds()})
		}
	}
	session, err := j.worker.eng.BeginEdit(diffusion.EditRequest{
		Template: tc,
		Mask:     m,
		Prompt:   j.api.Prompt,
		Seed:     j.api.Seed,
		Mode:     mode,
		Policy:   s.stepPolicyFor(j),
	})
	if err != nil {
		return apiErrorf(CodeInvalidRequest, false, "%v", err)
	}
	j.session = session
	return nil
}

// evict drops a job whose waiter is gone (deadline, cancel, shed) at a
// stage boundary, releasing its admission slot.
func (s *Server) evict(j *job, at string) {
	j.worker.removeOutstanding(j)
	s.obs.span(j.id, stageEvict, j.worker.id, time.Now(), 0,
		map[string]float64{"deadline_ms": float64(j.deadlineMS)})
	s.obs.plane.RecordFlight("evict", j.id, j.worker.id, at)
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// postLoop is the postprocessing CPU pool (the disaggregated discipline's
// separate process, Fig 10-Bottom): decode the final latent into an image
// (and PNG when requested) and complete the response.
func (s *Server) postLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.postCh:
			s.postprocess(j)
		}
	}
}

// postprocess decodes a finished job's latent and completes its response.
// The postLoop pool calls it under the disaggregated discipline; the
// strawman discipline calls it inline from the engine loop.
func (s *Server) postprocess(j *job) {
	if j.aborted() {
		// The waiter is gone (deadline/cancel after denoising);
		// skip the decode entirely.
		return
	}
	if d := s.faults.Delay(faults.PostStage); d > 0 {
		sleepCtx(j.ctx, d)
	}
	post := time.Now()
	handoff := post.Sub(j.handoff)
	s.obs.span(j.id, stageHandoff, j.worker.id, j.handoff, handoff, nil)
	s.obs.cost(obs.CostSample{Stage: obs.CostStageHandoff, Units: 1,
		Seconds: handoff.Seconds()})
	res, err := j.session.Result()
	var png []byte
	if err == nil && j.api.ReturnImage {
		png, err = img.EncodePNG(res.Image)
	}
	complete := time.Now()
	s.obs.span(j.id, stagePostprocess, j.worker.id, post, complete.Sub(post), nil)
	s.obs.cost(obs.CostSample{Stage: obs.CostStagePostprocess, Units: 1,
		Seconds: complete.Sub(post).Seconds()})
	if err != nil {
		if j.deliver(jobResult{err: asAPIError(err)}) {
			s.obs.outcome(outcomeError)
		}
		return
	}
	resp := EditResponse{
		RequestID:      j.id,
		Worker:         j.worker.id,
		MaskRatio:      j.ratio,
		QueueMS:        msBetween(j.arrival, j.admit),
		InferenceMS:    msBetween(j.admit, j.finish),
		TotalMS:        msBetween(j.arrival, complete),
		StepsComputed:  res.StepsComputed,
		ImagePNG:       png,
		Degraded:       j.degraded,
		DegradedReason: j.degradedReason,
		Retries:        int(j.attempts.Load()),
		DeadlineMS:     j.deadlineMS,
		Policy:         j.session.Policy(),
		TraceID:        obs.FormatTraceID(obs.TraceID(j.id)),
	}
	if r := j.session.ReusedBlockRatio(); r > 0 {
		resp.ReusedBlockRatio = r
	}
	s.completed.Add(1)
	s.total.Add(resp.TotalMS)
	s.queue.Add(resp.QueueMS)
	s.inference.Add(resp.InferenceMS)
	s.handoff.Add(handoff.Seconds())
	s.obs.span(j.id, stageRequest, j.worker.id, j.arrival, complete.Sub(j.arrival),
		map[string]float64{
			"mask_ratio": j.ratio,
			"steps":      float64(res.StepsComputed),
			"worker":     float64(j.worker.id),
		})
	if j.deliver(jobResult{resp: resp}) {
		s.obs.outcome(outcomeOK)
		s.obs.observeSLO(j.ratio, complete.Sub(j.arrival))
		// Feed the autoscaler's attainment window with the same
		// (ratio, latency) observation the plane's SLO tracker sees.
		s.ctrl.ObserveCompletion(j.ratio, complete.Sub(j.arrival).Seconds())
	}
}

func msBetween(a, b time.Time) float64 {
	return float64(b.Sub(a).Microseconds()) / 1000
}

// Snapshot returns the live statistics.
func (s *Server) Snapshot() Stats {
	host := s.store.Stats()[0]
	hits, misses, evicted := int(host.Hits), int(host.Misses), int(host.Evictions)
	st := Stats{
		Completed:          int(s.completed.Load()),
		MeanTotalMS:        s.total.Mean(),
		P95TotalMS:         s.total.P95(),
		MeanQueueMS:        s.queue.Mean(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEvicted:       evicted,
		ScheduleDecisionUS: s.decision.Mean() * 1e6,
		BatchOrganizeUS:    s.organize.Mean() * 1e6,
		SerializeUS:        s.serialize.Mean() * 1e6,
		HandoffUS:          s.handoff.Mean() * 1e6,
	}
	for _, w := range s.workers {
		st.WorkerQueueDepths = append(st.WorkerQueueDepths, w.outstandingCount())
	}
	return st
}

// Health reports readiness with per-replica detail: whether the worker
// loops have started, each replica's lifecycle state / engine-loop
// liveness / queue depth, and whether admission control still has
// headroom. Status is "degraded" (HTTP 503) only when NO routable (Active)
// replica has a live engine loop — a single crashed replica in a larger
// fleet keeps serving on the survivors and stays "ok", with the outage
// visible in the per-replica entries. Saturated means every routable
// replica's outstanding queue is at the MaxQueue admission limit, i.e. the
// next submission would be rejected with ErrOverloaded.
func (s *Server) Health() Health {
	h := Health{
		Started:   s.started.Load(),
		Workers:   len(s.workers),
		MaxQueue:  s.cfg.MaxQueue,
		Completed: s.completed.Load(),
	}
	states := s.ctrl.States()
	saturated := s.cfg.MaxQueue > 0
	routable, liveRoutable := 0, 0
	for i, w := range s.workers {
		d := w.outstandingCount()
		alive := w.alive.Load()
		h.QueueDepths = append(h.QueueDepths, d)
		h.WorkerAlive = append(h.WorkerAlive, alive)
		state := fleet.Active
		if i < len(states) {
			state = states[i]
		}
		h.Replicas = append(h.Replicas, ReplicaHealth{
			ID: i, State: state.String(), Alive: alive, QueueDepth: d,
		})
		if state != fleet.Active {
			continue
		}
		routable++
		if alive {
			liveRoutable++
		}
		if d < s.cfg.MaxQueue {
			saturated = false
		}
	}
	if routable == 0 {
		saturated = false
	}
	switch {
	case !h.Started:
		h.Status = "starting"
	case liveRoutable == 0:
		h.Status = "degraded"
	case saturated:
		h.Status = "overloaded"
	default:
		h.Status = "ok"
	}
	return h
}

// Fleet snapshots the fleet control plane for GET /v1/fleet: the router in
// effect and, per replica, its lifecycle state, engine-loop liveness,
// queue depth, the controller's affinity-tracked template set, and the
// templates actually staged replica-locally (when staging is enabled).
func (s *Server) Fleet() FleetResponse {
	resp := FleetResponse{
		Router:    s.routerKind.String(),
		Autoscale: s.ctrl.AutoscaleEnabled(),
	}
	for _, ri := range s.ctrl.Replicas() {
		fr := FleetReplica{ID: ri.ID, State: ri.State.String(), Templates: ri.Templates}
		if ri.ID < len(s.workers) {
			w := s.workers[ri.ID]
			fr.Alive = w.alive.Load()
			fr.QueueDepth = w.outstandingCount()
			fr.StagedTemplates = w.stagedTemplates()
		}
		resp.Replicas = append(resp.Replicas, fr)
	}
	return resp
}
