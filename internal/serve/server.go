package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flashps/internal/cache"
	"flashps/internal/diffusion"
	"flashps/internal/img"
	"flashps/internal/metrics"
	"flashps/internal/model"
	"flashps/internal/obs"
	"flashps/internal/perfmodel"
	"flashps/internal/sched"
	"flashps/internal/tensor"
)

// Config parameterizes the serving plane.
type Config struct {
	// Model is the numeric engine configuration.
	Model model.Config
	// Profile is the paper-scale profile backing the mask-aware
	// scheduler's latency regressions.
	Profile perfmodel.ModelProfile
	// Workers is the number of engine replicas ("GPU processes").
	Workers int
	// MaxBatch bounds each worker's running batch.
	MaxBatch int
	// PreWorkers / PostWorkers size the CPU stage pools.
	PreWorkers, PostWorkers int
	// CacheBudgetBytes bounds the host activation cache (0 = 1 GiB).
	CacheBudgetBytes int64
	// CacheDir, when set, enables the disk tier (§4.2): template caches
	// are written through to disk and staged back after host LRU eviction.
	CacheDir string
	// Policy routes requests across workers.
	Policy sched.Policy
	// MaxQueue, when > 0, bounds each worker's outstanding requests;
	// submissions beyond it are rejected immediately (admission control /
	// backpressure) instead of queueing unboundedly.
	MaxQueue int
	// TraceRing sizes the span trace ring buffer (spans retained for
	// /debug/traces); 0 uses obs.DefaultTraceRing.
	TraceRing int
	// Seed fixes engine weights; all workers share it so template caches
	// are valid on every replica.
	Seed uint64
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.PreWorkers <= 0 {
		c.PreWorkers = 2
	}
	if c.PostWorkers <= 0 {
		c.PostWorkers = 2
	}
	if c.CacheBudgetBytes <= 0 {
		c.CacheBudgetBytes = 1 << 30
	}
}

// job is one in-flight edit request.
type job struct {
	id      uint64
	api     EditRequestAPI
	mode    diffusion.EditMode
	ratio   float64
	session *diffusion.EditSession
	worker  *worker

	// Scheduler-visible load fields: ratioHint is immutable after submit;
	// remaining is updated atomically by the engine loop.
	ratioHint float64
	remaining atomic.Int32

	arrival time.Time
	ready   time.Time
	admit   time.Time
	finish  time.Time

	latentBytes []byte
	resp        chan jobResult
	handoff     time.Time
}

type jobResult struct {
	resp EditResponse
	err  error
}

// ErrOverloaded is returned when admission control rejects a request
// because the selected worker's queue is full (Config.MaxQueue).
var ErrOverloaded = fmt.Errorf("serve: overloaded, request rejected by admission control")

// templateStore abstracts over the host-only and tiered (host+disk)
// activation stores.
type templateStore interface {
	Put(id uint64, tc *diffusion.TemplateCache) error
	Get(id uint64) *diffusion.TemplateCache
}

// Server is the multi-worker serving plane.
type Server struct {
	cfg     Config
	store   templateStore
	workers []*worker

	schedMu   sync.Mutex
	scheduler *sched.Scheduler

	preCh  chan *job
	postCh chan *job

	// Recorders back the JSON /v1/stats snapshot; they are SyncRecorders
	// because the engine loops, CPU pools, and frontend all record
	// concurrently. The registry-backed instruments live in obs.
	total     metrics.SyncRecorder
	queue     metrics.SyncRecorder
	inference metrics.SyncRecorder
	decision  metrics.SyncRecorder // seconds
	organize  metrics.SyncRecorder
	serialize metrics.SyncRecorder
	handoff   metrics.SyncRecorder
	completed atomic.Int64

	obs     *serveObs
	started atomic.Bool

	nextID atomic.Uint64
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a serving plane; call Start before submitting work and Close
// when done.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	var store templateStore
	if cfg.CacheDir != "" {
		tiered, err := cache.NewTiered(cfg.CacheBudgetBytes, cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		store = tiered
	} else {
		host, err := cache.NewStore(cfg.CacheBudgetBytes)
		if err != nil {
			return nil, err
		}
		store = host
	}
	est, err := perfmodel.Calibrate(cfg.Profile, tensor.NewRNG(cfg.Seed^0xCA11B), 0.02)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     store,
		scheduler: sched.New(cfg.Policy, est, cfg.MaxBatch, cfg.Seed),
		preCh:     make(chan *job, 1024),
		postCh:    make(chan *job, 1024),
		obs:       newServeObs(cfg.TraceRing),
		ctx:       ctx,
		cancel:    cancel,
	}
	s.obs.bindStore(store)
	for i := 0; i < cfg.Workers; i++ {
		eng, err := diffusion.NewEngine(cfg.Model, cfg.Seed)
		if err != nil {
			cancel()
			return nil, err
		}
		s.workers = append(s.workers, newWorker(i, eng, s))
		s.obs.setOutstanding(i, 0)
	}
	return s, nil
}

// Start launches the CPU pools and worker engine loops.
func (s *Server) Start() {
	for i := 0; i < s.cfg.PreWorkers; i++ {
		s.wg.Add(1)
		go s.preLoop()
	}
	for i := 0; i < s.cfg.PostWorkers; i++ {
		s.wg.Add(1)
		go s.postLoop()
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.run()
	}
	s.started.Store(true)
}

// Registry exposes the metrics registry backing /metrics, so embedding
// services can add their own instruments or scrape programmatically.
func (s *Server) Registry() *obs.Registry { return s.obs.reg }

// Tracer exposes the span tracer backing /debug/traces.
func (s *Server) Tracer() *obs.Tracer { return s.obs.tracer }

// Close stops all goroutines and waits for them.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// Prepare registers a template: renders the synthetic template image, runs
// the cache-population pass and stores the activation cache.
func (s *Server) Prepare(req PrepareRequest) (PrepareResponse, error) {
	if len(s.workers) == 0 {
		return PrepareResponse{}, fmt.Errorf("serve: no workers")
	}
	eng := s.workers[0].eng
	cfg := s.cfg.Model
	h, w := eng.Codec.ImageSize(cfg.LatentH, cfg.LatentW)
	var template *img.Image
	if len(req.ImagePNG) > 0 {
		decoded, err := img.Decode(req.ImagePNG)
		if err != nil {
			return PrepareResponse{}, err
		}
		template = img.Resize(decoded, h, w)
	} else {
		template = img.SynthTemplate(req.ImageSeed, h, w)
	}
	start := time.Now()
	tc, _, err := eng.PrepareTemplate(req.TemplateID, template, req.Prompt, req.RecordKV)
	if err != nil {
		return PrepareResponse{}, err
	}
	if err := s.store.Put(req.TemplateID, tc); err != nil {
		return PrepareResponse{}, err
	}
	return PrepareResponse{
		TemplateID: req.TemplateID,
		CacheBytes: tc.SizeBytes(),
		PrepareMS:  float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// SubmitEdit serves one edit request synchronously: route → preprocess →
// continuous-batched denoising → postprocess.
func (s *Server) SubmitEdit(ctx context.Context, api EditRequestAPI) (EditResponse, error) {
	mode, err := parseMode(api.Mode)
	if err != nil {
		return EditResponse{}, err
	}
	j := &job{
		id:        s.nextID.Add(1),
		api:       api,
		mode:      mode,
		arrival:   time.Now(),
		resp:      make(chan jobResult, 1),
		ratioHint: s.maskRatioHint(api.Mask),
	}
	j.remaining.Store(int32(s.cfg.Model.Steps))

	// Route (Algorithm 2), measuring the paper's §6.6 decision overhead.
	t0 := time.Now()
	s.schedMu.Lock()
	views := make([]sched.WorkerView, len(s.workers))
	for i, w := range s.workers {
		views[i] = w.view()
	}
	idx := s.scheduler.Pick(views, sched.Item{MaskRatio: j.ratioHint, Steps: s.cfg.Model.Steps})
	s.schedMu.Unlock()
	decision := time.Since(t0)
	s.obs.span(j.id, stageSchedule, idx, t0, decision,
		map[string]float64{"mask_ratio_hint": j.ratioHint})

	j.worker = s.workers[idx]
	if s.cfg.MaxQueue > 0 && j.worker.outstandingCount() >= s.cfg.MaxQueue {
		s.obs.requests.With(outcomeRejected).Inc()
		return EditResponse{}, ErrOverloaded
	}
	j.worker.addOutstanding(j)
	s.decision.Add(decision.Seconds())

	select {
	case s.preCh <- j:
	case <-s.ctx.Done():
		j.worker.removeOutstanding(j)
		return EditResponse{}, fmt.Errorf("serve: server closed")
	}

	select {
	case res := <-j.resp:
		return res.resp, res.err
	case <-ctx.Done():
		return EditResponse{}, ctx.Err()
	case <-s.ctx.Done():
		return EditResponse{}, fmt.Errorf("serve: server closed")
	}
}

// maskRatioHint estimates a request's mask ratio before rasterization, for
// routing purposes.
func (s *Server) maskRatioHint(m MaskSpec) float64 {
	grid := float64(s.cfg.Model.LatentH * s.cfg.Model.LatentW)
	switch m.Type {
	case "ratio":
		return m.Ratio
	case "rect", "ellipse":
		area := float64((m.Y1 - m.Y0) * (m.X1 - m.X0))
		if m.Type == "ellipse" {
			area *= 0.785 // π/4
		}
		ratio := area / grid
		if ratio < 0 {
			ratio = 0
		}
		if ratio > 1 {
			ratio = 1
		}
		return ratio
	case "full":
		return 1
	default:
		return 0.2
	}
}

func parseMode(mode string) (diffusion.EditMode, error) {
	switch mode {
	case "", "flashps":
		return diffusion.EditCachedY, nil
	case "full":
		return diffusion.EditFull, nil
	case "naive":
		return diffusion.EditNaiveSkip, nil
	case "teacache":
		return diffusion.EditTeaCache, nil
	default:
		return 0, fmt.Errorf("serve: unknown mode %q", mode)
	}
}

// preLoop is the preprocessing CPU pool: rasterize the mask, fetch the
// template cache and open the edit session, then hand the job to its
// worker's ready queue.
func (s *Server) preLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.preCh:
			t0 := time.Now()
			err := s.preprocess(j)
			s.obs.span(j.id, stagePreprocess, j.worker.id, t0, time.Since(t0),
				map[string]float64{"mask_ratio": j.ratio})
			if err != nil {
				j.worker.removeOutstanding(j)
				s.obs.requests.With(outcomeError).Inc()
				j.resp <- jobResult{err: err}
				continue
			}
			j.ready = time.Now()
			select {
			case j.worker.readyCh <- j:
			case <-s.ctx.Done():
				return
			}
		}
	}
}

func (s *Server) preprocess(j *job) error {
	cfg := s.cfg.Model
	m, err := j.api.Mask.Build(cfg.LatentH, cfg.LatentW)
	if err != nil {
		return err
	}
	j.ratio = m.Ratio()
	t0 := time.Now()
	tc := s.store.Get(j.api.TemplateID)
	hit := 1.0
	if tc == nil {
		hit = 0
	}
	s.obs.span(j.id, stageCacheLoad, j.worker.id, t0, time.Since(t0),
		map[string]float64{"template": float64(j.api.TemplateID), "hit": hit})
	if tc == nil {
		return fmt.Errorf("serve: template %d not prepared", j.api.TemplateID)
	}
	session, err := j.worker.eng.BeginEdit(diffusion.EditRequest{
		Template: tc,
		Mask:     m,
		Prompt:   j.api.Prompt,
		Seed:     j.api.Seed,
		Mode:     j.mode,
	})
	if err != nil {
		return err
	}
	j.session = session
	return nil
}

// postLoop is the postprocessing CPU pool: decode the final latent into an
// image (and PNG when requested) and complete the response.
func (s *Server) postLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.postCh:
			post := time.Now()
			handoff := post.Sub(j.handoff)
			s.obs.span(j.id, stageHandoff, j.worker.id, j.handoff, handoff, nil)
			res, err := j.session.Result()
			var png []byte
			if err == nil && j.api.ReturnImage {
				png, err = img.EncodePNG(res.Image)
			}
			complete := time.Now()
			s.obs.span(j.id, stagePostprocess, j.worker.id, post, complete.Sub(post), nil)
			if err != nil {
				s.obs.requests.With(outcomeError).Inc()
				j.resp <- jobResult{err: err}
				continue
			}
			resp := EditResponse{
				RequestID:     j.id,
				Worker:        j.worker.id,
				MaskRatio:     j.ratio,
				QueueMS:       msBetween(j.arrival, j.admit),
				InferenceMS:   msBetween(j.admit, j.finish),
				TotalMS:       msBetween(j.arrival, complete),
				StepsComputed: res.StepsComputed,
				ImagePNG:      png,
			}
			s.completed.Add(1)
			s.total.Add(resp.TotalMS)
			s.queue.Add(resp.QueueMS)
			s.inference.Add(resp.InferenceMS)
			s.handoff.Add(handoff.Seconds())
			s.obs.requests.With(outcomeOK).Inc()
			s.obs.span(j.id, stageRequest, j.worker.id, j.arrival, complete.Sub(j.arrival),
				map[string]float64{
					"mask_ratio": j.ratio,
					"steps":      float64(res.StepsComputed),
					"worker":     float64(j.worker.id),
				})
			j.resp <- jobResult{resp: resp}
		}
	}
}

func msBetween(a, b time.Time) float64 {
	return float64(b.Sub(a).Microseconds()) / 1000
}

// Snapshot returns the live statistics.
func (s *Server) Snapshot() Stats {
	var hits, misses, evicted int
	switch st := s.store.(type) {
	case *cache.Store:
		hits, misses, evicted = st.Stats()
	case *cache.Tiered:
		hits, misses, evicted = st.Host.Stats()
	}
	st := Stats{
		Completed:          int(s.completed.Load()),
		MeanTotalMS:        s.total.Mean(),
		P95TotalMS:         s.total.P95(),
		MeanQueueMS:        s.queue.Mean(),
		CacheHits:          hits,
		CacheMisses:        misses,
		CacheEvicted:       evicted,
		ScheduleDecisionUS: s.decision.Mean() * 1e6,
		BatchOrganizeUS:    s.organize.Mean() * 1e6,
		SerializeUS:        s.serialize.Mean() * 1e6,
		HandoffUS:          s.handoff.Mean() * 1e6,
	}
	for _, w := range s.workers {
		st.WorkerQueueDepths = append(st.WorkerQueueDepths, w.outstandingCount())
	}
	return st
}

// Health reports readiness: whether the worker loops have started and
// whether admission control still has headroom. Saturated means every
// worker's outstanding queue is at the MaxQueue admission limit, i.e. the
// next submission would be rejected with ErrOverloaded.
func (s *Server) Health() Health {
	h := Health{
		Started:   s.started.Load(),
		Workers:   len(s.workers),
		MaxQueue:  s.cfg.MaxQueue,
		Completed: s.completed.Load(),
	}
	saturated := s.cfg.MaxQueue > 0 && len(s.workers) > 0
	for _, w := range s.workers {
		d := w.outstandingCount()
		h.QueueDepths = append(h.QueueDepths, d)
		if d < s.cfg.MaxQueue {
			saturated = false
		}
	}
	switch {
	case !h.Started:
		h.Status = "starting"
	case saturated:
		h.Status = "overloaded"
	default:
		h.Status = "ok"
	}
	return h
}
