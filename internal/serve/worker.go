package serve

import (
	"encoding/binary"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flashps/internal/batching"
	"flashps/internal/diffusion"
	"flashps/internal/faults"
	"flashps/internal/model"
	"flashps/internal/obs"
	"flashps/internal/tensor"
)

// worker is one engine replica running a continuous-batching loop under
// the shared core's discipline (batching.Core decides every admission).
// Under the default disaggregated discipline (Fig 10-Bottom) the loop only
// ever executes denoising steps, admits preprocessed jobs at step
// boundaries, and serializes finished latents before handing them to the
// postprocessing pool. Under strawman-cb the decode runs inline on the
// engine loop (the Fig 10-Top defect), and under static joins happen only
// into an empty batch.
//
// The loop is supervised: a crash (panic or injected fault) marks the
// replica dead, re-routes its running batch to live replicas, and
// restarts the loop after Config.WorkerRestartDelay. While dead, the
// scheduler does not route to it and /healthz reports "degraded".
type worker struct {
	id      int
	eng     *diffusion.Engine
	srv     *Server
	readyCh chan *job

	// alive is the scheduler-visible liveness flag, false between a crash
	// and the supervised restart.
	alive atomic.Bool

	// running is the engine loop's current batch. It is owned by the
	// supervisor goroutine (the loop runs on it), so the crash handler can
	// rescue it without locks.
	running []*job

	mu sync.Mutex
	// outstanding holds assigned-and-incomplete jobs in placement order;
	// a stable order keeps the scheduler view (a floating-point cost sum)
	// deterministic, unlike the map it replaced.
	outstanding []*job

	// Replica-local staged template set (fleet mode, Config.StagedTemplates
	// > 0): an LRU of template IDs this replica has staged, least-recent
	// first, plus the checksum recorded during each staging pass.
	stageMu  sync.Mutex
	staged   []uint64
	stageSum map[uint64]uint32
}

func newWorker(id int, eng *diffusion.Engine, srv *Server) *worker {
	w := &worker{
		id:      id,
		eng:     eng,
		srv:     srv,
		readyCh: make(chan *job, 256),
	}
	w.alive.Store(true)
	return w
}

func (w *worker) addOutstanding(j *job) {
	w.mu.Lock()
	w.outstanding = append(w.outstanding, j)
	depth := len(w.outstanding)
	w.mu.Unlock()
	w.srv.obs.setOutstanding(w.id, depth)
}

// tryAddOutstanding atomically checks the admission limit and enqueues:
// it refuses when maxQueue > 0 and the worker already has maxQueue
// outstanding jobs. The check and the append share one critical section
// so a concurrent burst cannot slip past the limit between them.
func (w *worker) tryAddOutstanding(j *job, maxQueue int) bool {
	w.mu.Lock()
	if maxQueue > 0 && len(w.outstanding) >= maxQueue {
		w.mu.Unlock()
		return false
	}
	w.outstanding = append(w.outstanding, j)
	depth := len(w.outstanding)
	w.mu.Unlock()
	w.srv.obs.setOutstanding(w.id, depth)
	return true
}

func (w *worker) removeOutstanding(j *job) {
	w.mu.Lock()
	for i, o := range w.outstanding {
		if o == j {
			w.outstanding = append(w.outstanding[:i], w.outstanding[i+1:]...)
			break
		}
	}
	depth := len(w.outstanding)
	w.mu.Unlock()
	w.srv.obs.setOutstanding(w.id, depth)
}

func (w *worker) outstandingCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.outstanding)
}

// ensureStaged makes a template replica-local: a hit on this worker's
// staged LRU just refreshes recency, while a miss pays the staging pass —
// a full read of the cache entry's tensors with a CRC32 checksum, the cost
// a real multi-process replica would pay copying the template into device
// memory. The entry itself keeps serving from the shared store (this is a
// one-process plane), so staging models the transfer without duplicating
// the bytes. Returns whether a staging pass ran and the bytes it covered.
// Evictions beyond capacity drop the least-recent template, so a template
// bouncing between replicas re-pays the pass — exactly the cost
// template-affinity routing avoids.
func (w *worker) ensureStaged(tc *diffusion.TemplateCache, capacity int) (bool, int64) {
	w.stageMu.Lock()
	for i, id := range w.staged {
		if id == tc.TemplateID {
			copy(w.staged[i:], w.staged[i+1:])
			w.staged[len(w.staged)-1] = id
			w.stageMu.Unlock()
			return false, 0
		}
	}
	w.stageMu.Unlock()

	// The pass runs outside the lock (it is the slow part and touches only
	// the immutable cache entry); a concurrent duplicate for the same
	// template is resolved on re-check below.
	bytes, sum := stagePass(tc)

	w.stageMu.Lock()
	defer w.stageMu.Unlock()
	for _, id := range w.staged {
		if id == tc.TemplateID {
			return false, 0 // raced with another staging of the same template
		}
	}
	if w.stageSum == nil {
		w.stageSum = make(map[uint64]uint32)
	}
	w.staged = append(w.staged, tc.TemplateID)
	w.stageSum[tc.TemplateID] = sum
	for len(w.staged) > capacity {
		delete(w.stageSum, w.staged[0])
		w.staged = w.staged[1:]
	}
	return true, bytes
}

// stagedTemplates returns the replica's staged template IDs, sorted.
func (w *worker) stagedTemplates() []uint64 {
	w.stageMu.Lock()
	out := append([]uint64(nil), w.staged...)
	w.stageMu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// stagePass reads every tensor of a template cache entry, returning the
// byte count and a CRC32 (IEEE) checksum over the traversal.
func stagePass(tc *diffusion.TemplateCache) (int64, uint32) {
	crc := crc32.NewIEEE()
	buf := make([]byte, 0, 1<<16)
	var total int64
	flush := func() {
		crc.Write(buf)
		buf = buf[:0]
	}
	addFloats := func(data []float32) {
		for _, v := range data {
			if len(buf)+4 > cap(buf) {
				flush()
			}
			buf = binary.LittleEndian.AppendUint32(buf, mathFloat32bits(v))
		}
		total += int64(4 * len(data))
	}
	addMatrix := func(m *tensor.Matrix) {
		if m != nil {
			addFloats(m.Data)
		}
	}
	addMatrix(tc.Z0)
	addMatrix(tc.Noise)
	for _, steps := range [][]*model.StepActivations{tc.Steps, tc.UncondSteps} {
		for _, st := range steps {
			if st == nil {
				continue
			}
			for _, b := range st.Blocks {
				addMatrix(b.Y)
				addMatrix(b.K)
				addMatrix(b.V)
			}
		}
	}
	addFloats(tc.Cond)
	flush()
	return total, crc.Sum32()
}

// shedCandidates snapshots the live outstanding jobs as core items (with
// the matching jobs in a parallel slice) for the overload policy.
func (w *worker) shedCandidates() ([]batching.Item, []*job) {
	w.mu.Lock()
	defer w.mu.Unlock()
	items := make([]batching.Item, 0, len(w.outstanding))
	jobs := make([]*job, 0, len(w.outstanding))
	for _, j := range w.outstanding {
		if j.aborted() {
			continue
		}
		items = append(items, batching.Item{ID: j.id, MaskRatio: j.ratioHint})
		jobs = append(jobs, j)
	}
	return items, jobs
}

// view snapshots the worker's load for the scheduler, in placement order.
func (w *worker) view() batching.WorkerView {
	w.mu.Lock()
	defer w.mu.Unlock()
	v := batching.WorkerView{
		Ratios:   make([]float64, 0, len(w.outstanding)),
		RemSteps: make([]int, 0, len(w.outstanding)),
	}
	for _, j := range w.outstanding {
		v.Ratios = append(v.Ratios, j.ratioHint)
		v.RemSteps = append(v.RemSteps, int(j.remaining.Load()))
	}
	return v
}

// admitJob marks a preprocessed job as admitted into the running batch and
// records its ready-queue wait as the "queue" span.
func (w *worker) admitJob(j *job) {
	j.admit = time.Now()
	w.srv.obs.span(j.id, stageQueue, w.id, j.ready, j.admit.Sub(j.ready), nil)
}

// run is the supervisor: it executes the engine loop until clean shutdown,
// and on a crash rescues the running batch, waits out the restart delay,
// and brings the loop back.
func (w *worker) run() {
	defer w.srv.wg.Done()
	for {
		if !w.runOnce() {
			return // clean shutdown (server closing)
		}
		w.alive.Store(false)
		w.srv.obs.workerRestarts.Inc()
		w.srv.obs.plane.RecordFlight("worker_crash", 0, w.id, "engine loop crashed; restarting")
		w.srv.rescueBatch(w)
		select {
		case <-time.After(w.srv.cfg.WorkerRestartDelay):
		case <-w.srv.ctx.Done():
			return
		}
		w.alive.Store(true)
	}
}

// runOnce is the engine loop. It owns w.running exclusively and reports
// whether it crashed (panic — real or injected) rather than shut down.
func (w *worker) runOnce() (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	core := w.srv.core
	for {
		// The discipline's admission budget for this iteration: static
		// admits only into an empty batch (where it forms the whole batch
		// at once), the continuous disciplines top up to MaxBatch. Computed
		// before any admission so the blocking pull below counts against
		// it. Jobs beyond the budget stay queued in readyCh.
		budget := core.AdmitBudget(w.id, len(w.running))
		// Block for work when idle; otherwise admit without blocking.
		// An admitted job joins w.running immediately: a crash at any
		// point after the pull must leave it visible to rescueBatch.
		if len(w.running) == 0 {
			select {
			case <-w.srv.ctx.Done():
				return false
			case j := <-w.readyCh:
				if j.aborted() {
					w.srv.evict(j, stageQueue)
					continue
				}
				core.Admit(w.id, len(w.running),
					[]batching.Item{{ID: j.id, MaskRatio: j.ratioHint}})
				w.admitJob(j)
				w.running = append(w.running, j)
				budget--
			}
		}
		if w.srv.faults.Fire(faults.WorkerCrash(w.id)) {
			panic("faults: injected worker crash")
		}
		t0 := time.Now()
		for budget > 0 {
			select {
			case j := <-w.readyCh:
				if j.aborted() {
					w.srv.evict(j, stageQueue)
					continue
				}
				core.Admit(w.id, len(w.running),
					[]batching.Item{{ID: j.id, MaskRatio: j.ratioHint}})
				w.admitJob(j)
				w.running = append(w.running, j)
				budget--
				continue
			default:
			}
			break
		}
		organize := time.Since(t0)
		if len(w.running) == 0 {
			continue
		}
		w.srv.obs.cost(obs.CostSample{Stage: obs.CostStageOrganize, Units: 1,
			Batch: len(w.running), Seconds: organize.Seconds()})

		// One denoising step for every running session; abandoned jobs
		// (expired deadline, canceled client, shed) leave at this step
		// boundary instead of burning denoise steps.
		batch := float64(len(w.running))
		w.srv.obs.observeBatch(len(w.running))
		// Fresh slice (not an in-place filter): a panic mid-loop must
		// leave w.running intact for rescueBatch, with no duplicates.
		still := make([]*job, 0, len(w.running))
		for _, j := range w.running {
			if j.aborted() {
				w.srv.evict(j, stageDenoiseStep)
				continue
			}
			if d := w.srv.faults.Delay(faults.StepStage); d > 0 {
				time.Sleep(d)
			}
			stepIdx := j.session.StepsComputed()
			ts := time.Now()
			done, err := j.session.Step()
			stepDur := time.Since(ts)
			w.srv.obs.incStep()
			w.srv.obs.span(j.id, stageDenoiseStep, w.id, ts, stepDur,
				map[string]float64{"step": float64(stepIdx), "batch": batch})
			if err == nil {
				// The session reports what the step actually executed:
				// computed blocks carry real FLOPs, policy-reused blocks
				// and TeaCache-skipped steps carry none. The split rides
				// on the sample so calibration can exclude (or featureize)
				// approximated steps instead of fitting an inflated law.
				computed, reused := j.session.LastStepBlocks()
				w.srv.obs.cost(obs.CostSample{Stage: obs.CostStageDenoiseStep,
					Units: 1, Batch: len(w.running), MaskSum: j.ratio,
					FLOPs:          w.srv.blockFLOPs(j) * float64(computed),
					BlocksComputed: computed, BlocksReused: reused,
					Seconds: stepDur.Seconds()})
			}
			if err != nil {
				w.removeOutstanding(j)
				if j.deliver(jobResult{err: asAPIError(err)}) {
					w.srv.obs.outcome(outcomeError)
				}
				continue
			}
			j.remaining.Store(int32(j.session.RemainingSteps()))
			if !done {
				still = append(still, j)
				continue
			}
			j.finish = time.Now()
			// Serialize the latent (measured §6.6 overhead) and hand off
			// to the postprocess pool; the engine loop never decodes.
			ts = time.Now()
			j.latentBytes = serializeLatent(j.session.Latent())
			serialize := time.Since(ts)
			w.srv.obs.span(j.id, stageSerialize, w.id, ts, serialize, nil)
			w.srv.obs.cost(obs.CostSample{Stage: obs.CostStageSerialize,
				Units: 1, Bytes: float64(len(j.latentBytes)),
				Seconds: serialize.Seconds()})
			w.removeOutstanding(j)
			j.handoff = time.Now()

			w.srv.serialize.Add(serialize.Seconds())

			if core.Discipline() == batching.StrawmanCB {
				// Fig 10-Top: postprocessing runs on the engine loop,
				// blocking the stream and every other in-flight request.
				w.srv.postprocess(j)
				continue
			}
			select {
			case w.srv.postCh <- j:
			case <-w.srv.ctx.Done():
				return false
			}
		}
		w.running = still

		w.srv.organize.Add(organize.Seconds())

		select {
		case <-w.srv.ctx.Done():
			return false
		default:
		}
	}
}

// serializeLatent encodes a latent matrix into the wire format used
// between the engine process and the postprocess workers (the paper's
// §6.6 serialization step).
func serializeLatent(m *tensor.Matrix) []byte {
	buf := make([]byte, 8+4*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(m.R))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(m.C))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(buf[8+4*i:], mathFloat32bits(v))
	}
	return buf
}

// deserializeLatent reverses serializeLatent. It rejects malformed or
// truncated buffers (including dimension fields that would overflow).
func deserializeLatent(buf []byte) *tensor.Matrix {
	if len(buf) < 8 {
		return nil
	}
	r := int(binary.LittleEndian.Uint32(buf[0:4]))
	c := int(binary.LittleEndian.Uint32(buf[4:8]))
	const maxDim = 1 << 20
	if r <= 0 || c <= 0 || r > maxDim || c > maxDim {
		return nil
	}
	if len(buf)-8 < 4*r*c {
		return nil
	}
	m := tensor.New(r, c)
	for i := range m.Data {
		m.Data[i] = mathFloat32frombits(binary.LittleEndian.Uint32(buf[8+4*i:]))
	}
	return m
}
