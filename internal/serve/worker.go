package serve

import (
	"encoding/binary"
	"sync"
	"time"

	"flashps/internal/diffusion"
	"flashps/internal/sched"
	"flashps/internal/tensor"
)

// worker is one engine replica running the disaggregated continuous-
// batching loop (Fig 10-Bottom): the loop only ever executes denoising
// steps, admits preprocessed jobs at step boundaries, and serializes
// finished latents before handing them to the postprocessing pool.
type worker struct {
	id      int
	eng     *diffusion.Engine
	srv     *Server
	readyCh chan *job

	mu          sync.Mutex
	outstanding map[*job]struct{}
}

func newWorker(id int, eng *diffusion.Engine, srv *Server) *worker {
	return &worker{
		id:          id,
		eng:         eng,
		srv:         srv,
		readyCh:     make(chan *job, 256),
		outstanding: make(map[*job]struct{}),
	}
}

func (w *worker) addOutstanding(j *job) {
	w.mu.Lock()
	w.outstanding[j] = struct{}{}
	depth := len(w.outstanding)
	w.mu.Unlock()
	w.srv.obs.setOutstanding(w.id, depth)
}

func (w *worker) removeOutstanding(j *job) {
	w.mu.Lock()
	delete(w.outstanding, j)
	depth := len(w.outstanding)
	w.mu.Unlock()
	w.srv.obs.setOutstanding(w.id, depth)
}

func (w *worker) outstandingCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.outstanding)
}

// view snapshots the worker's load for the scheduler.
func (w *worker) view() sched.WorkerView {
	w.mu.Lock()
	defer w.mu.Unlock()
	v := sched.WorkerView{
		Ratios:   make([]float64, 0, len(w.outstanding)),
		RemSteps: make([]int, 0, len(w.outstanding)),
	}
	for j := range w.outstanding {
		v.Ratios = append(v.Ratios, j.ratioHint)
		v.RemSteps = append(v.RemSteps, int(j.remaining.Load()))
	}
	return v
}

// admitJob marks a preprocessed job as admitted into the running batch and
// records its ready-queue wait as the "queue" span.
func (w *worker) admitJob(j *job) {
	j.admit = time.Now()
	w.srv.obs.span(j.id, stageQueue, w.id, j.ready, j.admit.Sub(j.ready), nil)
}

// run is the engine loop. It owns the running batch exclusively.
func (w *worker) run() {
	defer w.srv.wg.Done()
	var running []*job
	for {
		// Block for work when idle; otherwise admit without blocking.
		if len(running) == 0 {
			select {
			case <-w.srv.ctx.Done():
				return
			case j := <-w.readyCh:
				w.admitJob(j)
				running = append(running, j)
			}
		}
		t0 := time.Now()
		for len(running) < w.srv.cfg.MaxBatch {
			select {
			case j := <-w.readyCh:
				w.admitJob(j)
				running = append(running, j)
				continue
			default:
			}
			break
		}
		organize := time.Since(t0)

		// One denoising step for every running session.
		batch := float64(len(running))
		w.srv.obs.batchOccupancy.Observe(batch)
		still := running[:0]
		for _, j := range running {
			stepIdx := j.session.StepsComputed()
			ts := time.Now()
			done, err := j.session.Step()
			w.srv.obs.steps.Inc()
			w.srv.obs.span(j.id, stageDenoiseStep, w.id, ts, time.Since(ts),
				map[string]float64{"step": float64(stepIdx), "batch": batch})
			if err != nil {
				w.removeOutstanding(j)
				w.srv.obs.requests.With(outcomeError).Inc()
				j.resp <- jobResult{err: err}
				continue
			}
			j.remaining.Store(int32(j.session.RemainingSteps()))
			if !done {
				still = append(still, j)
				continue
			}
			j.finish = time.Now()
			// Serialize the latent (measured §6.6 overhead) and hand off
			// to the postprocess pool; the engine loop never decodes.
			ts = time.Now()
			j.latentBytes = serializeLatent(j.session.Latent())
			serialize := time.Since(ts)
			w.srv.obs.span(j.id, stageSerialize, w.id, ts, serialize, nil)
			w.removeOutstanding(j)
			j.handoff = time.Now()

			w.srv.serialize.Add(serialize.Seconds())

			select {
			case w.srv.postCh <- j:
			case <-w.srv.ctx.Done():
				return
			}
		}
		n := copy(running, still)
		running = running[:n]

		w.srv.organize.Add(organize.Seconds())

		select {
		case <-w.srv.ctx.Done():
			return
		default:
		}
	}
}

// serializeLatent encodes a latent matrix into the wire format used
// between the engine process and the postprocess workers (the paper's
// §6.6 serialization step).
func serializeLatent(m *tensor.Matrix) []byte {
	buf := make([]byte, 8+4*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(m.R))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(m.C))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(buf[8+4*i:], mathFloat32bits(v))
	}
	return buf
}

// deserializeLatent reverses serializeLatent. It rejects malformed or
// truncated buffers (including dimension fields that would overflow).
func deserializeLatent(buf []byte) *tensor.Matrix {
	if len(buf) < 8 {
		return nil
	}
	r := int(binary.LittleEndian.Uint32(buf[0:4]))
	c := int(binary.LittleEndian.Uint32(buf[4:8]))
	const maxDim = 1 << 20
	if r <= 0 || c <= 0 || r > maxDim || c > maxDim {
		return nil
	}
	if len(buf)-8 < 4*r*c {
		return nil
	}
	m := tensor.New(r, c)
	for i := range m.Data {
		m.Data[i] = mathFloat32frombits(binary.LittleEndian.Uint32(buf[8+4*i:]))
	}
	return m
}
