// Package simclock provides a small discrete-event simulation kernel:
// a virtual clock and an event queue of timestamped callbacks. The cluster
// serving simulator drives workers, schedulers and cache transfers on it.
package simclock

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	at  float64
	seq int64 // FIFO tiebreak for equal timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a discrete-event simulation clock. The zero value is ready to
// use with time starting at 0.
type Clock struct {
	now    float64
	seq    int64
	events eventHeap
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics — it indicates a simulator bug.
func (c *Clock) At(t float64, fn func()) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling at %g before now %g", t, c.now))
	}
	c.seq++
	heap.Push(&c.events, &event{at: t, seq: c.seq, fn: fn})
}

// After schedules fn to run delay seconds from now.
func (c *Clock) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("simclock: negative delay %g", delay))
	}
	c.At(c.now+delay, fn)
}

// Pending returns the number of queued events.
func (c *Clock) Pending() int { return len(c.events) }

// Step executes the earliest event and returns true, or returns false if
// the queue is empty.
func (c *Clock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	e := heap.Pop(&c.events).(*event)
	c.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue is empty or the next event is after
// until (exclusive); it returns the number of events executed.
func (c *Clock) Run(until float64) int {
	n := 0
	for len(c.events) > 0 && c.events[0].at <= until {
		c.Step()
		n++
	}
	if c.now < until && len(c.events) == 0 {
		c.now = until
	}
	return n
}

// Drain executes all remaining events; maxEvents guards against runaway
// simulations (≤0 means no limit). It returns the number executed.
func (c *Clock) Drain(maxEvents int) int {
	n := 0
	for c.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
