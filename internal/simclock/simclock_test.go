package simclock

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var c Clock
	var order []int
	c.At(3, func() { order = append(order, 3) })
	c.At(1, func() { order = append(order, 1) })
	c.At(2, func() { order = append(order, 2) })
	c.Drain(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != 3 {
		t.Fatalf("Now = %g", c.Now())
	}
}

func TestFIFOTiebreak(t *testing.T) {
	var c Clock
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.At(1, func() { order = append(order, i) })
	}
	c.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfter(t *testing.T) {
	var c Clock
	fired := false
	c.At(2, func() {
		c.After(3, func() { fired = true })
	})
	c.Drain(0)
	if !fired || c.Now() != 5 {
		t.Fatalf("fired=%v now=%g", fired, c.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var c Clock
	c.At(5, func() {})
	c.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var c Clock
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	var c Clock
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		c.At(at, func() { fired = append(fired, at) })
	}
	n := c.Run(2.5)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("Run executed %d events (%v)", n, fired)
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d", c.Pending())
	}
	// Run past the end advances the clock to until.
	c.Drain(0)
	c2 := &Clock{}
	c2.Run(10)
	if c2.Now() != 10 {
		t.Fatalf("empty Run did not advance clock: %g", c2.Now())
	}
}

func TestDrainLimit(t *testing.T) {
	var c Clock
	count := 0
	// Self-perpetuating event chain.
	var step func()
	step = func() {
		count++
		c.After(1, step)
	}
	c.At(0, step)
	n := c.Drain(10)
	if n != 10 || count != 10 {
		t.Fatalf("Drain(10) executed %d", n)
	}
}

func TestStepEmpty(t *testing.T) {
	var c Clock
	if c.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	var c Clock
	var order []string
	c.At(1, func() {
		order = append(order, "a")
		c.At(1.5, func() { order = append(order, "b") })
	})
	c.At(2, func() { order = append(order, "c") })
	c.Drain(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}
