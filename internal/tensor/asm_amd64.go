//go:build amd64

package tensor

import "os"

// useAVX2 gates the AVX2+FMA assembly kernels. It is resolved once at
// process start: the decision must not change mid-run, or mixed
// scalar/vector rounding would break reproducibility between calls.
// Set FLASHPS_NO_AVX2=1 to force the portable scalar kernels.
var useAVX2 = supportsAVX2() && os.Getenv("FLASHPS_NO_AVX2") == ""

// supportsAVX2 reports whether the CPU and OS support the AVX2+FMA kernels
// (FMA and AVX2 feature bits, plus OS-enabled YMM state via XGETBV).
func supportsAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidAsm(1, 0)
	const fmaBit = 1 << 12
	const osxsaveBit = 1 << 27
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}

func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

//go:noescape
func gemm4x16(kc int, a *float32, lda int, b *float32, ldb int, c *float32, ldc int)

//go:noescape
func dotAVX8(x, y *float32, n int) float32

//go:noescape
func axpyAVX8(alpha float32, x, y *float32, n int)

//go:noescape
func segDotAVX8(q, k *float32, d8, heads int, out *float32)

//go:noescape
func segAxpyAVX8(w, v, o *float32, d8, heads int)
