//go:build amd64

#include "textflag.h"

// func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
// Caller must have verified OSXSAVE support first.
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemm4x16(kc int, a *float32, lda int, b *float32, ldb int, c *float32, ldc int)
//
// C[4][16] += A[4][kc] × B[kc][16], the register micro-kernel of the blocked
// matmul. A is read down a row-major panel (element (r, p) at a[r*lda+p]),
// B down its leading rows (element (p, j) at b[p*ldb+j]). The 4×16 C tile
// lives in eight YMM accumulators for the whole panel; per reduction step
// the kernel issues two B loads, four A broadcasts, and eight FMAs.
//
// Each C element accumulates its products in ascending-p order, matching the
// scalar micro-kernel's chain per element (modulo FMA's fused rounding), and
// independent of any other element — see the determinism contract in
// matmul.go.
TEXT ·gemm4x16(SB), NOSPLIT, $0-56
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ lda+16(FP), R8
	SHLQ $2, R8               // A row stride in bytes
	MOVQ b+24(FP), DI
	MOVQ ldb+32(FP), R10
	SHLQ $2, R10              // B row stride in bytes
	MOVQ c+40(FP), DX
	MOVQ ldc+48(FP), R11
	SHLQ $2, R11              // C row stride in bytes
	LEAQ (SI)(R8*2), R9       // &A[2][p0]
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

gemmloop:
	VMOVUPS (DI), Y12         // B[p][0:8]
	VMOVUPS 32(DI), Y13       // B[p][8:16]
	VBROADCASTSS (SI), Y14    // A[0][p]
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VBROADCASTSS (SI)(R8*1), Y14
	VFMADD231PS Y12, Y14, Y2
	VFMADD231PS Y13, Y14, Y3
	VBROADCASTSS (R9), Y14    // A[2][p]
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VBROADCASTSS (R9)(R8*1), Y14
	VFMADD231PS Y12, Y14, Y6
	VFMADD231PS Y13, Y14, Y7
	ADDQ $4, SI
	ADDQ $4, R9
	ADDQ R10, DI
	DECQ CX
	JNZ  gemmloop

	// C rows += accumulators.
	VMOVUPS (DX), Y12
	VADDPS  Y12, Y0, Y0
	VMOVUPS Y0, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y13, Y1, Y1
	VMOVUPS Y1, 32(DX)
	ADDQ    R11, DX
	VMOVUPS (DX), Y12
	VADDPS  Y12, Y2, Y2
	VMOVUPS Y2, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y13, Y3, Y3
	VMOVUPS Y3, 32(DX)
	ADDQ    R11, DX
	VMOVUPS (DX), Y12
	VADDPS  Y12, Y4, Y4
	VMOVUPS Y4, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y13, Y5, Y5
	VMOVUPS Y5, 32(DX)
	ADDQ    R11, DX
	VMOVUPS (DX), Y12
	VADDPS  Y12, Y6, Y6
	VMOVUPS Y6, (DX)
	VMOVUPS 32(DX), Y13
	VADDPS  Y13, Y7, Y7
	VMOVUPS Y7, 32(DX)
	VZEROUPPER
	RET

// func dotAVX8(x, y *float32, n int) float32
//
// Dot product over n floats, n a positive multiple of 8 (the Go wrapper
// handles the scalar tail). Four 8-wide accumulator chains, reduced
// horizontally at the end in a fixed order.
TEXT ·dotAVX8(SB), NOSPLIT, $0-28
	MOVQ x+0(FP), SI
	MOVQ y+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, BX
	SHRQ $5, BX               // 32-element groups
	JZ   dottail

dotloop32:
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VMOVUPS (DI), Y8
	VMOVUPS 32(DI), Y9
	VMOVUPS 64(DI), Y10
	VMOVUPS 96(DI), Y11
	VFMADD231PS Y8, Y4, Y0
	VFMADD231PS Y9, Y5, Y1
	VFMADD231PS Y10, Y6, Y2
	VFMADD231PS Y11, Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ BX
	JNZ  dotloop32

dottail:
	ANDQ $31, CX              // remaining 8-element groups
	JZ   dotreduce

dotloop8:
	VMOVUPS (SI), Y4
	VMOVUPS (DI), Y8
	VFMADD231PS Y8, Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  dotloop8

dotreduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	VMOVSS X0, ret+24(FP)
	RET

// func segDotAVX8(q, k *float32, d8, heads int, out *float32)
//
// Per head h: out[h] = Σ_i q[h*d8+i]*k[h*d8+i] for i in [0, d8), d8 a
// positive multiple of 8. q and k are the contiguous full hidden rows, so
// one call produces every head's score for a (query, key) pair.
TEXT ·segDotAVX8(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), SI
	MOVQ k+8(FP), DI
	MOVQ d8+16(FP), R8
	MOVQ heads+24(FP), R9
	MOVQ out+32(FP), DX

sdheadloop:
	VXORPS Y0, Y0, Y0
	MOVQ R8, CX
	SHRQ $3, CX

sdinner:
	VMOVUPS (SI), Y4
	VMOVUPS (DI), Y8
	VFMADD231PS Y8, Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  sdinner
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS X0, (DX)
	ADDQ $4, DX
	DECQ R9
	JNZ  sdheadloop
	VZEROUPPER
	RET

// func segAxpyAVX8(w, v, o *float32, d8, heads int)
//
// Per head h: o[h*d8 : (h+1)*d8] += w[h] * v[h*d8 : (h+1)*d8], d8 a
// positive multiple of 8. One call accumulates a key's V row into every
// head's output segment with that head's softmax weight.
TEXT ·segAxpyAVX8(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), DX
	MOVQ v+8(FP), SI
	MOVQ o+16(FP), DI
	MOVQ d8+24(FP), R8
	MOVQ heads+32(FP), R9

saheadloop:
	VBROADCASTSS (DX), Y15
	MOVQ R8, CX
	SHRQ $3, CX

sainner:
	VMOVUPS (SI), Y4
	VMOVUPS (DI), Y8
	VFMADD231PS Y15, Y4, Y8
	VMOVUPS Y8, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  sainner
	ADDQ $4, DX
	DECQ R9
	JNZ  saheadloop
	VZEROUPPER
	RET

// func axpyAVX8(alpha float32, x, y *float32, n int)
//
// y[0:n] += alpha * x[0:n], n a positive multiple of 8 (Go wrapper handles
// the tail). Used by the fused-attention V accumulation.
TEXT ·axpyAVX8(SB), NOSPLIT, $0-32
	VBROADCASTSS alpha+0(FP), Y15
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX

axpyloop8:
	VMOVUPS (SI), Y4
	VMOVUPS (DI), Y8
	VFMADD231PS Y15, Y4, Y8
	VMOVUPS Y8, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  axpyloop8
	VZEROUPPER
	RET
