//go:build !amd64

package tensor

// Non-amd64 builds always use the portable scalar kernels; the constant
// lets the compiler eliminate the assembly call sites entirely.
const useAVX2 = false

func gemm4x16(kc int, a *float32, lda int, b *float32, ldb int, c *float32, ldc int) {
	panic("tensor: gemm4x16 without AVX2")
}

func dotAVX8(x, y *float32, n int) float32 { panic("tensor: dotAVX8 without AVX2") }

func axpyAVX8(alpha float32, x, y *float32, n int) { panic("tensor: axpyAVX8 without AVX2") }

func segDotAVX8(q, k *float32, d8, heads int, out *float32) {
	panic("tensor: segDotAVX8 without AVX2")
}

func segAxpyAVX8(w, v, o *float32, d8, heads int) { panic("tensor: segAxpyAVX8 without AVX2") }
