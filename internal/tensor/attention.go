package tensor

import (
	"fmt"
	"math"
)

// attnKTile is the key/value tile length of the fused attention kernel: a
// tile of scores lives in a fixed stack buffer and the running softmax
// statistics are rescaled at most once per tile.
const attnKTile = 64

// FusedAttentionInto computes multi-head scaled dot-product attention
//
//	dst[h] = softmax(q[h]·k[h]ᵀ · scale) · v[h]   per head h, concatenated,
//
// where q is Lq×H, k and v are Lk×H, dst is Lq×H, and head h occupies the
// column slice [h·d, (h+1)·d) with d = H/heads. Heads are addressed as
// strided views into the full matrices, so per-head slicing is zero-copy,
// and the kernel streams over K/V tiles with an online softmax
// (FlashAttention-style), so the Lq×Lk score matrix is never materialized.
// When heads does not divide H the trailing H mod heads columns carry no
// head and are zeroed.
//
// The masked-query paths (Block.ForwardMasked*) pass a q holding only the
// gathered masked rows (Lq < Lk); nothing in the kernel assumes Lq == Lk.
//
// dst is fully overwritten and must not alias q, k, or v. Each output row
// is produced by a single deterministic pass, so results are bit-identical
// at any parallelism setting.
func FusedAttentionInto(dst, q, k, v *Matrix, heads int, scale float32) {
	if heads < 1 {
		panic(fmt.Sprintf("tensor: FusedAttentionInto invalid head count %d", heads))
	}
	if q.C != k.C || k.C != v.C || dst.C != q.C || dst.R != q.R || k.R != v.R {
		panic(fmt.Sprintf("tensor: FusedAttentionInto shape mismatch dst=%v q=%v k=%v v=%v", dst, q, k, v))
	}
	if k.R == 0 || q.C/heads == 0 {
		for i := 0; i < dst.R; i++ {
			clear(dst.Row(i))
		}
		return
	}
	if !shouldParallelize(q.R) {
		fusedAttentionRange(dst, q, k, v, heads, scale, 0, q.R)
		return
	}
	parallelRows(q.R, func(lo, hi int) {
		fusedAttentionRange(dst, q, k, v, heads, scale, lo, hi)
	})
}

// maxAttnHeads bounds the head count of the vectorized attention path so
// its per-tile score buffer can live on the stack.
const maxAttnHeads = 16

// fusedAttentionRange computes query rows [lo, hi) of all heads, picking
// the vectorized path when the head dimension is a multiple of the AVX2
// vector width. The choice depends only on the shape — never on the
// parallelism setting — so results stay bit-identical at any parallelism.
func fusedAttentionRange(dst, q, k, v *Matrix, heads int, scale float32, lo, hi int) {
	if d := q.C / heads; useAVX2 && d >= 8 && d%8 == 0 && heads <= maxAttnHeads {
		fusedAttentionRangeAVX(dst, q, k, v, heads, scale, lo, hi)
		return
	}
	fusedAttentionRangeGeneric(dst, q, k, v, heads, scale, lo, hi)
}

// fusedAttentionRangeAVX is the vectorized streaming-softmax kernel. Per
// (query, key) pair it computes every head's score with one segmented-dot
// call over the contiguous hidden rows, and accumulates every head's output
// segment with one segmented-axpy call, so the strided per-head views never
// materialize. Softmax statistics (running max, denominator) are tracked
// per head exactly as in the generic kernel.
func fusedAttentionRangeAVX(dst, q, k, v *Matrix, heads int, scale float32, lo, hi int) {
	h := q.C
	d := h / heads
	lk := k.R
	var sbuf [attnKTile * maxAttnHeads]float32
	var mMax [maxAttnHeads]float32
	var lsum [maxAttnHeads]float64
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*h : (i+1)*h]
		clear(drow)
		qrow := q.Data[i*h : (i+1)*h]
		for head := 0; head < heads; head++ {
			mMax[head] = float32(math.Inf(-1))
			lsum[head] = 0
		}
		for j0 := 0; j0 < lk; j0 += attnKTile {
			j1 := j0 + attnKTile
			if j1 > lk {
				j1 = lk
			}
			nk := j1 - j0
			for j := j0; j < j1; j++ {
				segDotAVX8(&qrow[0], &k.Data[j*h], d, heads, &sbuf[(j-j0)*heads])
			}
			for head := 0; head < heads; head++ {
				tileMax := float32(math.Inf(-1))
				for t := 0; t < nk; t++ {
					s := sbuf[t*heads+head] * scale
					sbuf[t*heads+head] = s
					if s > tileMax {
						tileMax = s
					}
				}
				if tileMax > mMax[head] {
					corr := float32(math.Exp(float64(mMax[head] - tileMax)))
					lsum[head] *= float64(corr)
					oseg := drow[head*d : head*d+d]
					for t := range oseg {
						oseg[t] *= corr
					}
					mMax[head] = tileMax
				}
				for t := 0; t < nk; t++ {
					w := float32(math.Exp(float64(sbuf[t*heads+head] - mMax[head])))
					lsum[head] += float64(w)
					sbuf[t*heads+head] = w
				}
			}
			for j := j0; j < j1; j++ {
				segAxpyAVX8(&sbuf[(j-j0)*heads], &v.Data[j*h], &drow[0], d, heads)
			}
		}
		for head := 0; head < heads; head++ {
			inv := float32(1 / lsum[head])
			oseg := drow[head*d : head*d+d]
			for t := range oseg {
				oseg[t] *= inv
			}
		}
	}
}

// fusedAttentionRangeGeneric is the portable scalar kernel; it also covers
// head dimensions that are not a multiple of the vector width. Each
// (row, head) output segment doubles as the running FlashAttention
// accumulator: when a K/V tile raises the running max m, the segment and
// the running denominator l are rescaled by exp(m_old − m_new) before the
// tile's weighted V rows are accumulated.
func fusedAttentionRangeGeneric(dst, q, k, v *Matrix, heads int, scale float32, lo, hi int) {
	h := q.C
	d := h / heads
	lk := k.R
	var sbuf [attnKTile]float32
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*h : (i+1)*h]
		clear(drow)
		qrow := q.Data[i*h : (i+1)*h]
		for head := 0; head < heads; head++ {
			off := head * d
			qseg := qrow[off : off+d]
			oseg := drow[off : off+d]
			mMax := float32(math.Inf(-1))
			var l float64
			for j0 := 0; j0 < lk; j0 += attnKTile {
				j1 := j0 + attnKTile
				if j1 > lk {
					j1 = lk
				}
				tileMax := float32(math.Inf(-1))
				for j := j0; j < j1; j++ {
					s := dot(qseg, k.Data[j*h+off:j*h+off+d]) * scale
					sbuf[j-j0] = s
					if s > tileMax {
						tileMax = s
					}
				}
				if tileMax > mMax {
					corr := float32(math.Exp(float64(mMax - tileMax)))
					l *= float64(corr)
					for t := range oseg {
						oseg[t] *= corr
					}
					mMax = tileMax
				}
				for j := j0; j < j1; j++ {
					w := float32(math.Exp(float64(sbuf[j-j0] - mMax)))
					l += float64(w)
					vseg := v.Data[j*h+off : j*h+off+d]
					eseg := oseg[:len(vseg)]
					for t, vv := range vseg {
						eseg[t] += w * vv
					}
				}
			}
			inv := float32(1 / l)
			for t := range oseg {
				oseg[t] *= inv
			}
		}
	}
}

// AttentionNaiveInto is the reference multi-head attention: it copies each
// head's columns, materializes the full Lq×Lk score matrix, applies
// SoftmaxRows and multiplies by V. It is kept (allocating, unfused) as the
// ground truth for the fused kernel's property tests and as the "before"
// side of the kernel benchmarks.
func AttentionNaiveInto(dst, q, k, v *Matrix, heads int, scale float32) {
	if heads < 1 {
		panic(fmt.Sprintf("tensor: AttentionNaiveInto invalid head count %d", heads))
	}
	if q.C != k.C || k.C != v.C || dst.C != q.C || dst.R != q.R || k.R != v.R {
		panic(fmt.Sprintf("tensor: AttentionNaiveInto shape mismatch dst=%v q=%v k=%v v=%v", dst, q, k, v))
	}
	for i := 0; i < dst.R; i++ {
		clear(dst.Row(i))
	}
	d := q.C / heads
	if k.R == 0 || d == 0 {
		return
	}
	copyCols := func(m *Matrix, start int) *Matrix {
		out := New(m.R, d)
		for r := 0; r < m.R; r++ {
			copy(out.Row(r), m.Row(r)[start:start+d])
		}
		return out
	}
	for head := 0; head < heads; head++ {
		off := head * d
		qh := copyCols(q, off)
		kh := copyCols(k, off)
		vh := copyCols(v, off)
		scores := MatMulT(qh, kh)
		Scale(scores, scale)
		SoftmaxRows(scores)
		oh := MatMul(scores, vh)
		for r := 0; r < dst.R; r++ {
			copy(dst.Row(r)[off:off+d], oh.Row(r))
		}
	}
}
