package tensor

// HasAVX2 reports whether the AVX2+FMA assembly kernels are active on this
// process (CPU support present and not disabled via FLASHPS_NO_AVX2).
// Benchmarks record it in their run metadata so results are comparable.
func HasAVX2() bool { return useAVX2 }
