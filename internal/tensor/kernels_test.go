package tensor

import (
	"testing"
)

// oddShapes exercises the blocked kernels' remainder paths: single rows,
// sizes straddling the 4-row micro-kernel, the kcBlock reduction panel, and
// the trBlock transpose tile.
var oddShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 17, 3},
	{3, 5, 7},
	{4, 4, 4},
	{5, 300, 9},  // k > kcBlock: multiple reduction panels
	{17, 33, 65}, // tile remainders on every axis
	{34, 16, 34},
}

func withParallelism(t *testing.T, p int) {
	t.Helper()
	old := Parallelism()
	SetParallelism(p)
	t.Cleanup(func() { SetParallelism(old) })
}

func TestMatMulIntoMatchesNaive(t *testing.T) {
	rng := NewRNG(11)
	for _, s := range oddShapes {
		a := Randn(rng, s.m, s.k, 1)
		b := Randn(rng, s.k, s.n, 1)
		got := New(s.m, s.n)
		want := New(s.m, s.n)
		MatMulInto(got, a, b)
		MatMulNaiveInto(want, a, b)
		if !AllClose(got, want, 1e-5) {
			t.Fatalf("%d×%d×%d: blocked vs naive maxdiff %g", s.m, s.k, s.n, MaxAbsDiff(got, want))
		}
	}
}

func TestMatMulTIntoMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(12)
	for _, s := range oddShapes {
		a := Randn(rng, s.m, s.k, 1)
		b := Randn(rng, s.n, s.k, 1)
		got := New(s.m, s.n)
		MatMulTInto(got, a, b)
		want := New(s.m, s.n)
		MatMulNaiveInto(want, a, Transpose(b))
		// 1e-4: the 4-accumulator dot reassociates long (k=300) reductions.
		if !AllClose(got, want, 1e-4) {
			t.Fatalf("%d×%d×%d: MatMulT vs transpose oracle maxdiff %g", s.m, s.k, s.n, MaxAbsDiff(got, want))
		}
	}
}

func TestTransposeIntoOddShapes(t *testing.T) {
	rng := NewRNG(13)
	// Straddle the trBlock tile on both axes.
	for _, s := range [][2]int{{1, 1}, {1, 40}, {40, 1}, {31, 33}, {64, 64}, {65, 70}} {
		m := Randn(rng, s[0], s[1], 1)
		tr := Transpose(m)
		for i := 0; i < m.R; i++ {
			for j := 0; j < m.C; j++ {
				if tr.At(j, i) != m.At(i, j) {
					t.Fatalf("%v transpose wrong at (%d,%d)", s, i, j)
				}
			}
		}
	}
}

// attnShapes covers the fused kernel's edge cases: single query, tile
// remainders (L=17, L=attnKTile+1), masked-query gathers (Lq < Lk), and
// heads that do not divide the hidden dimension.
var attnShapes = []struct{ lq, lk, h, heads int }{
	{1, 1, 8, 2},
	{1, 17, 16, 4},
	{17, 17, 16, 4},
	{5, 17, 16, 1},
	{3, 65, 16, 2},  // lk straddles attnKTile
	{9, 130, 24, 3}, // multiple K tiles
	{10, 10, 10, 3}, // heads ∤ hidden: trailing column carries no head
	{4, 4, 6, 8},    // headDim 0: defined as all-zero output
}

func TestFusedAttentionMatchesNaive(t *testing.T) {
	rng := NewRNG(14)
	for _, s := range attnShapes {
		q := Randn(rng, s.lq, s.h, 1)
		k := Randn(rng, s.lk, s.h, 1)
		v := Randn(rng, s.lk, s.h, 1)
		scale := float32(0.5)
		got := Randn(rng, s.lq, s.h, 1) // pre-filled: kernel must fully overwrite
		want := New(s.lq, s.h)
		FusedAttentionInto(got, q, k, v, s.heads, scale)
		AttentionNaiveInto(want, q, k, v, s.heads, scale)
		if !AllClose(got, want, 1e-5) {
			t.Fatalf("%+v: fused vs naive maxdiff %g", s, MaxAbsDiff(got, want))
		}
	}
}

func TestFusedAttentionExtremeScores(t *testing.T) {
	// Large score magnitudes force the online-softmax rescaling path; the
	// naive reference subtracts the row max, so agreement here proves the
	// running-max bookkeeping.
	rng := NewRNG(15)
	q := Randn(rng, 8, 16, 30)
	k := Randn(rng, 70, 16, 30)
	v := Randn(rng, 70, 16, 1)
	got := New(8, 16)
	want := New(8, 16)
	FusedAttentionInto(got, q, k, v, 4, 1)
	AttentionNaiveInto(want, q, k, v, 4, 1)
	if !AllClose(got, want, 1e-4) {
		t.Fatalf("fused vs naive under extreme scores: maxdiff %g", MaxAbsDiff(got, want))
	}
}

func TestKernelsParallelBitIdentical(t *testing.T) {
	// The determinism contract: any parallelism setting must produce results
	// bit-identical to serial execution, because each output row is computed
	// by exactly one worker in a fixed accumulation order.
	rng := NewRNG(16)
	a := Randn(rng, 130, 96, 1) // above the 2*minRowsPerTask threshold
	b := Randn(rng, 96, 80, 1)
	bt := Randn(rng, 80, 96, 1)
	q := Randn(rng, 130, 64, 1)
	k := Randn(rng, 130, 64, 1)
	v := Randn(rng, 130, 64, 1)

	withParallelism(t, 1)
	mmSerial := New(130, 80)
	MatMulInto(mmSerial, a, b)
	mtSerial := New(130, 80)
	MatMulTInto(mtSerial, a, bt)
	atSerial := New(130, 64)
	FusedAttentionInto(atSerial, q, k, v, 4, 0.125)

	for _, p := range []int{2, 3, 8} {
		SetParallelism(p)
		mm := New(130, 80)
		MatMulInto(mm, a, b)
		if !Equal(mm, mmSerial) {
			t.Fatalf("MatMulInto not bit-identical at parallelism %d", p)
		}
		mt := New(130, 80)
		MatMulTInto(mt, a, bt)
		if !Equal(mt, mtSerial) {
			t.Fatalf("MatMulTInto not bit-identical at parallelism %d", p)
		}
		at := New(130, 64)
		FusedAttentionInto(at, q, k, v, 4, 0.125)
		if !Equal(at, atSerial) {
			t.Fatalf("FusedAttentionInto not bit-identical at parallelism %d", p)
		}
	}
}

func TestSerialKernelsZeroAllocs(t *testing.T) {
	rng := NewRNG(17)
	a := Randn(rng, 24, 32, 1)
	b := Randn(rng, 32, 24, 1)
	dst := New(24, 24)
	q := Randn(rng, 24, 32, 1)
	k := Randn(rng, 24, 32, 1)
	v := Randn(rng, 24, 32, 1)
	o := New(24, 32)
	cases := []struct {
		name string
		fn   func()
	}{
		{"MatMulInto", func() { MatMulInto(dst, a, b) }},
		{"MatMulTInto", func() { MatMulTInto(dst, a, a) }},
		{"FusedAttentionInto", func() { FusedAttentionInto(o, q, k, v, 4, 0.1) }},
		{"TransposeInto", func() { TransposeInto(dst, dst) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(10, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op on the serial path, want 0", tc.name, n)
		}
	}
}

func TestArenaGetZeroedAndSized(t *testing.T) {
	ws := NewArena()
	m := ws.Get(3, 5)
	if m.R != 3 || m.C != 5 {
		t.Fatalf("Get shape %v", m)
	}
	for i := range m.Data {
		m.Data[i] = 7
	}
	ws.Reset()
	m2 := ws.Get(3, 5)
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("Get after Reset must return zeroed memory")
		}
	}
}

func TestArenaWrapAliases(t *testing.T) {
	ws := NewArena()
	backing := []float32{1, 2, 3, 4, 5, 6}
	m := ws.Wrap(2, 3, backing)
	m.Set(1, 2, 42)
	if backing[5] != 42 {
		t.Fatal("Wrap must alias the provided slice")
	}
	// Nil arena falls back to heap allocation.
	var nilWS *Arena
	hm := nilWS.Get(2, 2)
	if hm.R != 2 || hm.C != 2 {
		t.Fatalf("nil-arena Get shape %v", hm)
	}
	if w := nilWS.Wrap(2, 3, backing); w.At(1, 2) != 42 {
		t.Fatal("nil-arena Wrap must alias")
	}
}

func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	ws := NewArena()
	cycle := func() {
		ws.Reset()
		a := ws.Get(16, 16)
		b := ws.Get(16, 16)
		c := ws.Get(16, 16)
		MatMulInto(c, a, b)
		_ = ws.Wrap(1, 16, c.Row(0))
		_ = ws.Clone(c)
	}
	cycle() // first cycle measures demand
	cycle() // second runs fully slab-backed
	if n := testing.AllocsPerRun(10, cycle); n != 0 {
		t.Fatalf("steady-state arena cycle: %v allocs/op, want 0", n)
	}
}

func TestArenaOverflowFallsBackToHeap(t *testing.T) {
	ws := NewArena()
	// Far beyond the (empty) slab: must still return usable zeroed memory.
	m := ws.Get(100, 100)
	m.Set(99, 99, 1)
	if m.At(99, 99) != 1 {
		t.Fatal("overflow matrix unusable")
	}
	ws.Reset()
	// After Reset the slab has grown to cover the demand.
	if n := testing.AllocsPerRun(10, func() {
		ws.Reset()
		ws.Get(100, 100)
	}); n != 0 {
		t.Fatalf("post-growth Get allocates %v/op, want 0", n)
	}
}

func TestAddIntoAliasingAndGatherRowsInto(t *testing.T) {
	a := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := FromSlice(2, 2, []float32{10, 20, 30, 40})
	AddInto(a, a, b) // dst aliases a
	want := []float32{11, 22, 33, 44}
	for i, v := range a.Data {
		if v != want[i] {
			t.Fatalf("AddInto aliasing: got %v", a.Data)
		}
	}
	src := FromSlice(3, 2, []float32{1, 1, 2, 2, 3, 3})
	dst := New(2, 2)
	GatherRowsInto(dst, src, []int{2, 0})
	if dst.At(0, 0) != 3 || dst.At(1, 0) != 1 {
		t.Fatalf("GatherRowsInto: got %v", dst.Data)
	}
}
