package tensor

// Cache-blocked, register-tiled dense matmul kernels.
//
// The micro-kernel accumulates mcRows rows of dst at once against each
// streamed row of b, so every loaded b row is reused mcRows times and the
// inner loop carries mcRows independent FMA chains (the scalar analogue of
// a register tile). The reduction dimension is processed in kcBlock panels
// so the active slice of b stays cache-resident across the row sweep.
//
// Determinism contract: every dst row accumulates its k products in
// ascending-p order regardless of how rows are grouped into micro-kernel
// tiles or partitioned across workers, so results are bit-identical to the
// serial single-row loop at any parallelism setting.

const (
	// mcRows is the micro-kernel height: rows of a/dst accumulated per
	// b-row load.
	mcRows = 4
	// kcBlock is the reduction panel width; kcBlock rows of b (kcBlock×C
	// floats) are swept per row group to stay cache-resident.
	kcBlock = 256
	// trBlock is the tile edge of the blocked transpose: a trBlock²
	// float32 tile (4 KiB at 32) fits in L1 for both the row-major reads
	// and the column-major writes.
	trBlock = 32
)

// matMulRange computes rows [lo, hi) of dst = a × b.
//
// On AVX2 hardware, full 4-row × 16-column tiles run in the gemm4x16
// assembly micro-kernel; row and column remainders fall back to the scalar
// tiles. Which tile a given dst element lands in depends only on global
// (row, column) position — parallelRows aligns worker partitions to mcRows
// so the asm/scalar split never shifts with the parallelism setting.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	k, m := a.C, b.C
	for i := lo; i < hi; i++ {
		clear(dst.Data[i*m : (i+1)*m])
	}
	if m == 0 || k == 0 {
		return
	}
	for p0 := 0; p0 < k; p0 += kcBlock {
		p1 := p0 + kcBlock
		if p1 > k {
			p1 = k
		}
		i := lo
		for ; i+mcRows <= hi; i += mcRows {
			j := 0
			if useAVX2 {
				kc := p1 - p0
				for ; j+16 <= m; j += 16 {
					gemm4x16(kc, &a.Data[i*k+p0], k, &b.Data[p0*m+j], m, &dst.Data[i*m+j], m)
				}
			}
			if j < m {
				matMulTile4(dst, a, b, i, p0, p1, j, m)
			}
		}
		for ; i < hi; i++ {
			matMulTile1(dst, a, b, i, p0, p1, 0, m)
		}
	}
}

// matMulTile4 accumulates dst rows [i, i+4) columns [j0, j1) over the
// reduction panel [p0, p1).
func matMulTile4(dst, a, b *Matrix, i, p0, p1, j0, j1 int) {
	k, m := a.C, b.C
	a0 := a.Data[(i+0)*k : (i+1)*k]
	a1 := a.Data[(i+1)*k : (i+2)*k]
	a2 := a.Data[(i+2)*k : (i+3)*k]
	a3 := a.Data[(i+3)*k : (i+4)*k]
	d0 := dst.Data[(i+0)*m+j0 : (i+0)*m+j1]
	d1 := dst.Data[(i+1)*m+j0 : (i+1)*m+j1]
	d2 := dst.Data[(i+2)*m+j0 : (i+2)*m+j1]
	d3 := dst.Data[(i+3)*m+j0 : (i+3)*m+j1]
	for p := p0; p < p1; p++ {
		brow := b.Data[p*m+j0 : p*m+j1]
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		e0, e1, e2, e3 := d0[:len(brow)], d1[:len(brow)], d2[:len(brow)], d3[:len(brow)]
		for j, bv := range brow {
			e0[j] += av0 * bv
			e1[j] += av1 * bv
			e2[j] += av2 * bv
			e3[j] += av3 * bv
		}
	}
}

// matMulTile1 accumulates a single dst row, columns [j0, j1), over the
// reduction panel [p0, p1); it is the remainder kernel of matMulTile4.
func matMulTile1(dst, a, b *Matrix, i, p0, p1, j0, j1 int) {
	k, m := a.C, b.C
	arow := a.Data[i*k : (i+1)*k]
	drow := dst.Data[i*m+j0 : i*m+j1]
	for p := p0; p < p1; p++ {
		brow := b.Data[p*m+j0 : p*m+j1]
		av := arow[p]
		erow := drow[:len(brow)]
		for j, bv := range brow {
			erow[j] += av * bv
		}
	}
}

// matMulTRange computes rows [lo, hi) of dst = a × bᵀ.
func matMulTRange(dst, a, b *Matrix, lo, hi int) {
	n := b.R
	if useAVX2 && a.C >= 16 {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.Row(i)
			for j := 0; j < n; j++ {
				orow[j] = dot(arow, b.Row(j))
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		j := 0
		for ; j+2 <= n; j += 2 {
			orow[j], orow[j+1] = dot2(arow, b.Row(j), b.Row(j+1))
		}
		if j < n {
			orow[j] = dot(arow, b.Row(j))
		}
	}
}

// dot returns x·y with four independent accumulator chains (8-wide on AVX2
// hardware). The accumulation order depends only on len(x), never on the
// caller's partitioning, so results are reproducible.
func dot(x, y []float32) float32 {
	y = y[:len(x)]
	if useAVX2 && len(x) >= 16 {
		n8 := len(x) &^ 7
		s := dotAVX8(&x[0], &y[0], n8)
		for p := n8; p < len(x); p++ {
			s += x[p] * y[p]
		}
		return s
	}
	var s0, s1, s2, s3 float32
	p := 0
	for ; p+4 <= len(x); p += 4 {
		s0 += x[p] * y[p]
		s1 += x[p+1] * y[p+1]
		s2 += x[p+2] * y[p+2]
		s3 += x[p+3] * y[p+3]
	}
	for ; p < len(x); p++ {
		s0 += x[p] * y[p]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot2 returns (x·y0, x·y1), sharing the single pass over x.
func dot2(x, y0, y1 []float32) (float32, float32) {
	y0 = y0[:len(x)]
	y1 = y1[:len(x)]
	var a0, a1, b0, b1 float32
	p := 0
	for ; p+2 <= len(x); p += 2 {
		x0, x1 := x[p], x[p+1]
		a0 += x0 * y0[p]
		a1 += x1 * y0[p+1]
		b0 += x0 * y1[p]
		b1 += x1 * y1[p+1]
	}
	if p < len(x) {
		a0 += x[p] * y0[p]
		b0 += x[p] * y1[p]
	}
	return a0 + a1, b0 + b1
}
