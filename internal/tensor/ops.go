package tensor

import (
	"fmt"
	"math"
)

// MatMul computes a × b and returns a new (a.R × b.C) matrix.
// It panics if a.C != b.R.
func MatMul(a, b *Matrix) *Matrix {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v × %v", a, b))
	}
	out := New(a.R, b.C)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a × b into dst, which must be a.R × b.C.
// dst may not alias a or b. The kernel is cache-blocked and register-tiled
// (see matmul.go); results are bit-identical at any parallelism setting.
func MatMulInto(dst, a, b *Matrix) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst, a, b))
	}
	if !shouldParallelize(a.R) {
		matMulRange(dst, a, b, 0, a.R)
		return
	}
	parallelRows(a.R, func(lo, hi int) { matMulRange(dst, a, b, lo, hi) })
}

// MatMulNaiveInto is the reference ikj matmul this package shipped before
// the blocked kernel, kept as the property-test oracle and the "before"
// side of the kernel benchmarks. Single-threaded.
func MatMulNaiveInto(dst, a, b *Matrix) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MatMulNaiveInto shape mismatch dst=%v a=%v b=%v", dst, a, b))
	}
	k, m := a.C, b.C
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*m : (i+1)*m]
		for j := range drow {
			drow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*m : (p+1)*m]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulT computes a × bᵀ and returns a new (a.R × b.R) matrix.
// It panics if a.C != b.C. This is the natural layout for Q·Kᵀ.
func MatMulT(a, b *Matrix) *Matrix {
	out := New(a.R, b.R)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes a × bᵀ into dst, which must be a.R × b.R.
// dst may not alias a or b.
func MatMulTInto(dst, a, b *Matrix) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic(fmt.Sprintf("tensor: MatMulTInto shape mismatch dst=%v a=%v × %vᵀ", dst, a, b))
	}
	if !shouldParallelize(a.R) {
		matMulTRange(dst, a, b, 0, a.R)
		return
	}
	parallelRows(a.R, func(lo, hi int) { matMulTRange(dst, a, b, lo, hi) })
}

// Transpose returns a new matrix that is mᵀ.
func Transpose(m *Matrix) *Matrix {
	out := New(m.C, m.R)
	TransposeInto(out, m)
	return out
}

// TransposeInto writes mᵀ into dst, which must be m.C × m.R and may not
// alias m. It walks trBlock×trBlock tiles so both the row-major reads and
// the column-major writes stay inside a cache-resident tile, instead of
// striding the full output once per input row.
func TransposeInto(dst, m *Matrix) {
	if dst.R != m.C || dst.C != m.R {
		panic(fmt.Sprintf("tensor: TransposeInto shape mismatch dst=%v m=%v", dst, m))
	}
	for i0 := 0; i0 < m.R; i0 += trBlock {
		i1 := i0 + trBlock
		if i1 > m.R {
			i1 = m.R
		}
		for j0 := 0; j0 < m.C; j0 += trBlock {
			j1 := j0 + trBlock
			if j1 > m.C {
				j1 = m.C
			}
			for i := i0; i < i1; i++ {
				row := m.Data[i*m.C : (i+1)*m.C]
				for j := j0; j < j1; j++ {
					dst.Data[j*m.R+i] = row[j]
				}
			}
		}
	}
}

// Add returns a + b element-wise. It panics on shape mismatch.
func Add(a, b *Matrix) *Matrix {
	if a.R != b.R || a.C != b.C {
		panic("tensor: Add shape mismatch")
	}
	out := New(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInto writes a + b element-wise into dst (which may alias a or b).
// It panics on shape mismatch.
func AddInto(dst, a, b *Matrix) {
	if a.R != b.R || a.C != b.C || dst.R != a.R || dst.C != a.C {
		panic("tensor: AddInto shape mismatch")
	}
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b *Matrix) {
	if a.R != b.R || a.C != b.C {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a - b element-wise.
func Sub(a, b *Matrix) *Matrix {
	if a.R != b.R || a.C != b.C {
		panic("tensor: Sub shape mismatch")
	}
	out := New(a.R, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func Scale(m *Matrix, s float32) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// SoftmaxRows applies a numerically stable softmax to each row of m in place.
func SoftmaxRows(m *Matrix) {
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			row[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// LayerNormRows normalizes each row of m to zero mean and unit variance,
// then applies the per-column affine parameters gamma and beta
// (each of length m.C). eps guards against zero variance.
func LayerNormRows(m *Matrix, gamma, beta []float32, eps float32) {
	if len(gamma) != m.C || len(beta) != m.C {
		panic("tensor: LayerNormRows parameter length mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(len(row))
		var varsum float64
		for _, v := range row {
			d := float64(v) - mean
			varsum += d * d
		}
		inv := float32(1 / math.Sqrt(varsum/float64(len(row))+float64(eps)))
		for j, v := range row {
			row[j] = (v-float32(mean))*inv*gamma[j] + beta[j]
		}
	}
}

// GeLU applies the Gaussian Error Linear Unit (tanh approximation) to every
// element of m in place.
func GeLU(m *Matrix) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range m.Data {
		x := float64(v)
		m.Data[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
}

// GatherRows returns a new matrix whose rows are m's rows at the given
// indices, in order. It panics if any index is out of range.
func GatherRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.C)
	GatherRowsInto(out, m, idx)
	return out
}

// GatherRowsInto copies m's rows at the given indices into dst in order:
// dst[i] = m[idx[i]]. It panics if dst is not len(idx)×m.C or any index is
// out of range.
func GatherRowsInto(dst, m *Matrix, idx []int) {
	if dst.R != len(idx) || dst.C != m.C {
		panic(fmt.Sprintf("tensor: GatherRowsInto shape mismatch dst=%v, want %d×%d", dst, len(idx), m.C))
	}
	for i, r := range idx {
		if r < 0 || r >= m.R {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of range [0,%d)", r, m.R))
		}
		copy(dst.Row(i), m.Row(r))
	}
}

// ScatterRows copies src's rows into dst at the given row indices:
// dst[idx[i]] = src[i]. It panics if len(idx) != src.R or on column mismatch.
func ScatterRows(dst, src *Matrix, idx []int) {
	if len(idx) != src.R {
		panic("tensor: ScatterRows index length mismatch")
	}
	if dst.C != src.C {
		panic("tensor: ScatterRows column mismatch")
	}
	for i, r := range idx {
		if r < 0 || r >= dst.R {
			panic(fmt.Sprintf("tensor: ScatterRows index %d out of range [0,%d)", r, dst.R))
		}
		copy(dst.Row(r), src.Row(i))
	}
}

// CosineSimilarity returns the cosine similarity of vectors a and b.
// It returns 0 if either vector has zero norm.
func CosineSimilarity(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: CosineSimilarity length mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Matrix) float64 {
	var sum float64
	for _, v := range m.Data {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum)
}

// MeanAbs returns the mean absolute value of m's elements, or 0 if empty.
func MeanAbs(m *Matrix) float64 {
	if len(m.Data) == 0 {
		return 0
	}
	var sum float64
	for _, v := range m.Data {
		sum += math.Abs(float64(v))
	}
	return sum / float64(len(m.Data))
}
