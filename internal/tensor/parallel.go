package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the number of row partitions numeric kernels may use.
// Row-partitioned parallelism keeps results bit-identical to the serial
// path (each output row is computed by exactly one invocation with the same
// operation order), so experiments stay reproducible at any setting.
var parallelism atomic.Int32

func init() { parallelism.Store(1) }

// SetParallelism sets the kernel parallelism budget (values < 1 mean 1).
// Deterministic results are preserved at any setting. Binaries that want
// full-machine kernels set runtime.GOMAXPROCS(0); the library default is 1
// so tests and experiments are serial unless asked otherwise.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current kernel parallelism budget.
func Parallelism() int { return int(parallelism.Load()) }

// minRowsPerTask is the smallest row partition worth shipping to a worker.
const minRowsPerTask = 16

// shouldParallelize reports whether a kernel over rows should take the
// parallel path. Hot kernels branch on this BEFORE constructing the
// parallelRows closure, so the serial path performs zero heap allocations.
func shouldParallelize(rows int) bool {
	return Parallelism() > 1 && rows >= 2*minRowsPerTask
}

// task is one row partition of a kernel call, executed by the worker pool.
type task struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// The persistent worker pool. Workers are started once, on the first
// parallel kernel call, and live for the process lifetime; kernels then
// dispatch row partitions over a channel instead of spawning goroutines
// per call. Pool size is GOMAXPROCS-1 (the calling goroutine always
// executes the first partition itself, so GOMAXPROCS cores are busy).
var (
	poolOnce sync.Once
	poolCh   chan task
)

func startPool() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 1 {
		workers = 1
	}
	poolCh = make(chan task, 8*workers)
	for i := 0; i < workers; i++ {
		go func() {
			for t := range poolCh {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// parallelRows runs fn over row ranges [lo, hi) split across the
// configured parallelism budget. The partition depends only on
// (rows, Parallelism()) and each output row belongs to exactly one range,
// so results are bit-identical to fn(0, rows) at any budget and on any
// number of pool workers. Small row counts run serially.
func parallelRows(rows int, fn func(lo, hi int)) {
	p := Parallelism()
	if p <= 1 || rows < 2*minRowsPerTask {
		fn(0, rows)
		return
	}
	if max := rows / minRowsPerTask; p > max {
		p = max
	}
	poolOnce.Do(startPool)
	chunk := (rows + p - 1) / p
	// Align partitions to the matmul micro-kernel height: FMA tiles round
	// differently from the scalar remainder rows, so row-group membership
	// must match the serial sweep exactly for bit-identical results.
	chunk = (chunk + mcRows - 1) &^ (mcRows - 1)
	var wg sync.WaitGroup
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		poolCh <- task{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	fn(0, chunk)
	wg.Wait()
}
