package tensor

import (
	"sync"
	"sync/atomic"
)

// parallelism is the number of goroutines numeric kernels may use.
// Row-partitioned parallelism keeps results bit-identical to the serial
// path (each output row is computed by exactly one goroutine with the same
// operation order), so experiments stay reproducible at any setting.
var parallelism atomic.Int32

func init() { parallelism.Store(1) }

// SetParallelism sets the kernel goroutine budget (values < 1 mean 1).
// Deterministic results are preserved at any setting.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current kernel goroutine budget.
func Parallelism() int { return int(parallelism.Load()) }

// parallelRows runs fn over row ranges [lo, hi) split across the
// configured goroutine budget. Small row counts run serially.
func parallelRows(rows int, fn func(lo, hi int)) {
	p := Parallelism()
	const minRowsPerGoroutine = 16
	if p <= 1 || rows < 2*minRowsPerGoroutine {
		fn(0, rows)
		return
	}
	if p > rows/minRowsPerGoroutine {
		p = rows / minRowsPerGoroutine
	}
	var wg sync.WaitGroup
	chunk := (rows + p - 1) / p
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
