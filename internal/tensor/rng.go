package tensor

import "math"

// RNG is a small deterministic xorshift64* pseudo-random generator used to
// create reproducible model weights and noise. It is not safe for concurrent
// use; each goroutine should own its RNG.
type RNG struct {
	state uint64
	// Box-Muller spare value.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant since xorshift cannot escape the zero state.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.hasSpare = true
	return u * mul
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Randn returns an r×c matrix of N(0, std²) values.
func Randn(rng *RNG, rows, cols int, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
	return m
}

// RandUniform returns an r×c matrix of uniform values in [lo, hi).
func RandUniform(rng *RNG, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return m
}
