// Package tensor provides dense float32 matrices and the small set of
// numeric kernels needed by the FlashPS transformer substrate: matrix
// multiplication, row-wise softmax, layer normalization, GeLU, and
// row gather/scatter used by mask-aware attention.
//
// All operations are deterministic and single-threaded unless stated
// otherwise, so experiments are exactly reproducible across runs.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix with R rows and C columns.
// A Matrix with R*C == len(Data) is valid; the zero Matrix is an empty
// 0×0 matrix.
type Matrix struct {
	R, C int
	Data []float32
}

// New returns a zeroed r×c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", r, c))
	}
	return &Matrix{R: r, C: c, Data: make([]float32, r*c)}
}

// FromSlice wraps data as an r×c matrix without copying.
// It panics if len(data) != r*c.
func FromSlice(r, c int, data []float32) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: data length %d != %d×%d", len(data), r, c))
	}
	return &Matrix{R: r, C: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.C+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.C+j] = v }

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.R, m.C }

// Equal reports whether a and b have identical shape and elements.
func Equal(a, b *Matrix) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether a and b have the same shape and all elements
// within tol of each other.
func AllClose(a, b *Matrix, tol float64) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(float64(v)-float64(b.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// a and b. It panics on shape mismatch.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.R != b.R || a.C != b.C {
		panic("tensor: shape mismatch in MaxAbsDiff")
	}
	var max float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// String implements fmt.Stringer with a compact shape-only description.
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%d×%d)", m.R, m.C) }
