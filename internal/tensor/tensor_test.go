package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Shape(); r != 3 || c != 4 {
		t.Fatalf("Shape() = %d,%d want 3,4", r, c)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New matrix not zeroed")
		}
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 3, []float32{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v want 7", row[2])
	}
	row[0] = 5 // row aliases storage
	if m.At(1, 0) != 5 {
		t.Fatal("Row should alias matrix storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float32{58, 64, 139, 154})
	if !Equal(got, want) {
		t.Fatalf("MatMul = %v want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := Randn(rng, 5, 5, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if !AllClose(MatMul(a, id), a, 1e-6) {
		t.Fatal("A×I != A")
	}
	if !AllClose(MatMul(id, a), a, 1e-6) {
		t.Fatal("I×A != A")
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := Randn(rng, 4, 6, 1)
	b := Randn(rng, 5, 6, 1)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	if !AllClose(got, want, 1e-4) {
		t.Fatalf("MatMulT mismatch, maxdiff=%g", MaxAbsDiff(got, want))
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := Randn(rng, r, c, 1)
		return Equal(Transpose(Transpose(m)), m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(5)
		a := Randn(rng, n, n, 0.5)
		b := Randn(rng, n, n, 0.5)
		c := Randn(rng, n, n, 0.5)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return AllClose(left, right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(5)
		a := Randn(rng, n, n, 0.5)
		b := Randn(rng, n, n, 0.5)
		c := Randn(rng, n, n, 0.5)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(left, right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, r, c, 1)
		b := Randn(rng, r, c, 1)
		return AllClose(Sub(Add(a, b), b), a, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	AddInPlace(a, b)
	want := FromSlice(1, 3, []float32{11, 22, 33})
	if !Equal(a, want) {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
}

func TestScale(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, -2, 3})
	Scale(a, 2)
	want := FromSlice(1, 3, []float32{2, -4, 6})
	if !Equal(a, want) {
		t.Fatalf("Scale = %v", a.Data)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 1+rng.Intn(6), 1+rng.Intn(10)
		m := Randn(rng, r, c, 3)
		SoftmaxRows(m)
		for i := 0; i < r; i++ {
			var sum float64
			for _, v := range m.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{101, 102, 103})
	SoftmaxRows(a)
	SoftmaxRows(b)
	if !AllClose(a, b, 1e-5) {
		t.Fatal("softmax should be shift-invariant")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m := FromSlice(1, 2, []float32{1e4, -1e4})
	SoftmaxRows(m)
	if math.IsNaN(float64(m.Data[0])) || math.IsNaN(float64(m.Data[1])) {
		t.Fatal("softmax produced NaN on extreme inputs")
	}
	if m.Data[0] < 0.999 {
		t.Fatalf("softmax(1e4) = %v, want ≈1", m.Data[0])
	}
}

func TestLayerNormRowsStats(t *testing.T) {
	rng := NewRNG(7)
	m := Randn(rng, 4, 32, 5)
	gamma := make([]float32, 32)
	beta := make([]float32, 32)
	for i := range gamma {
		gamma[i] = 1
	}
	LayerNormRows(m, gamma, beta, 1e-5)
	for i := 0; i < m.R; i++ {
		var mean, varsum float64
		for _, v := range m.Row(i) {
			mean += float64(v)
		}
		mean /= float64(m.C)
		for _, v := range m.Row(i) {
			d := float64(v) - mean
			varsum += d * d
		}
		variance := varsum / float64(m.C)
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean = %g, want ≈0", i, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("row %d var = %g, want ≈1", i, variance)
		}
	}
}

func TestLayerNormAffine(t *testing.T) {
	m := FromSlice(1, 2, []float32{-1, 1})
	gamma := []float32{2, 2}
	beta := []float32{5, 5}
	LayerNormRows(m, gamma, beta, 0)
	// normalized row is (-1, 1); affine → (3, 7)
	want := FromSlice(1, 2, []float32{3, 7})
	if !AllClose(m, want, 1e-4) {
		t.Fatalf("LayerNorm affine = %v want %v", m.Data, want.Data)
	}
}

func TestGeLUProperties(t *testing.T) {
	m := FromSlice(1, 3, []float32{-10, 0, 10})
	GeLU(m)
	if math.Abs(float64(m.Data[0])) > 1e-3 {
		t.Fatalf("GeLU(-10) = %v, want ≈0", m.Data[0])
	}
	if m.Data[1] != 0 {
		t.Fatalf("GeLU(0) = %v, want 0", m.Data[1])
	}
	if math.Abs(float64(m.Data[2])-10) > 1e-3 {
		t.Fatalf("GeLU(10) = %v, want ≈10", m.Data[2])
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		r, c := 2+rng.Intn(8), 1+rng.Intn(6)
		m := Randn(rng, r, c, 1)
		// random subset of row indices
		var idx []int
		for i := 0; i < r; i++ {
			if rng.Float64() < 0.5 {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			idx = []int{0}
		}
		sub := GatherRows(m, idx)
		dst := m.Clone()
		ScatterRows(dst, sub, idx)
		return Equal(dst, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGatherRowsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GatherRows(New(2, 2), []int{5})
}

func TestScatterRowsShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScatterRows(New(3, 2), New(2, 3), []int{0, 1})
}

func TestCosineSimilarity(t *testing.T) {
	a := []float32{1, 0, 0}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-9 {
		t.Fatalf("cos(a,a) = %g want 1", got)
	}
	b := []float32{0, 1, 0}
	if got := CosineSimilarity(a, b); math.Abs(got) > 1e-9 {
		t.Fatalf("cos(orthogonal) = %g want 0", got)
	}
	neg := []float32{-1, 0, 0}
	if got := CosineSimilarity(a, neg); math.Abs(got+1) > 1e-9 {
		t.Fatalf("cos(a,-a) = %g want -1", got)
	}
	zero := []float32{0, 0, 0}
	if got := CosineSimilarity(a, zero); got != 0 {
		t.Fatalf("cos with zero vector = %g want 0", got)
	}
}

func TestCosineSimilarityScaleInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 1 + rng.Intn(10)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		c1 := CosineSimilarity(a, b)
		scaled := make([]float32, n)
		for i := range a {
			scaled[i] = a[i] * 3.5
		}
		c2 := CosineSimilarity(scaled, b)
		return math.Abs(c1-c2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if got := FrobeniusNorm(m); math.Abs(got-5) > 1e-9 {
		t.Fatalf("FrobeniusNorm = %g want 5", got)
	}
}

func TestMeanAbs(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 1, -3, 3})
	if got := MeanAbs(m); math.Abs(got-2) > 1e-9 {
		t.Fatalf("MeanAbs = %g want 2", got)
	}
	if got := MeanAbs(New(0, 0)); got != 0 {
		t.Fatalf("MeanAbs(empty) = %g want 0", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGZeroSeedNonDegenerate(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG is stuck at zero")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(123)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ≈1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %g, want ≈1", mean)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	r.Intn(0)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := NewRNG(11)
	a := Randn(rng, 7, 5, 1)
	b := Randn(rng, 5, 9, 1)
	dst := New(7, 9)
	// pre-fill dst to verify it is cleared
	for i := range dst.Data {
		dst.Data[i] = 42
	}
	MatMulInto(dst, a, b)
	if !AllClose(dst, MatMul(a, b), 1e-6) {
		t.Fatal("MatMulInto disagrees with MatMul")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := NewRNG(1)
	x := Randn(rng, 64, 64, 1)
	y := Randn(rng, 64, 64, 1)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := NewRNG(1)
	m := Randn(rng, 256, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(m)
	}
}

func TestParallelismSettings(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Fatal("SetParallelism(0) should clamp to 1")
	}
	SetParallelism(8)
	if Parallelism() != 8 {
		t.Fatalf("Parallelism = %d", Parallelism())
	}
}

func TestParallelMatMulBitIdentical(t *testing.T) {
	// Row-partitioned parallelism must produce bit-identical results to
	// the serial path at any goroutine budget.
	defer SetParallelism(1)
	rng := NewRNG(77)
	a := Randn(rng, 96, 64, 1)
	b := Randn(rng, 64, 80, 1)
	SetParallelism(1)
	serial := MatMul(a, b)
	serialT := MatMulT(a, Randn(NewRNG(78), 50, 64, 1))
	for _, p := range []int{2, 3, 7} {
		SetParallelism(p)
		if !Equal(MatMul(a, b), serial) {
			t.Fatalf("parallel MatMul differs at p=%d", p)
		}
		if !Equal(MatMulT(a, Randn(NewRNG(78), 50, 64, 1)), serialT) {
			t.Fatalf("parallel MatMulT differs at p=%d", p)
		}
	}
}

func TestParallelRowsCoverage(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(4)
	covered := make([]int32, 200)
	parallelRows(200, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("row %d covered %d times", i, c)
		}
	}
	// Tiny workloads run serially.
	n := 0
	parallelRows(5, func(lo, hi int) { n += hi - lo })
	if n != 5 {
		t.Fatalf("serial fallback covered %d of 5", n)
	}
}
