package tensor

import "fmt"

// Arena is a bump-allocating workspace for kernel intermediates: one
// float32 slab for matrix storage and one Matrix slab for headers. Get
// hands out matrices carved from the slabs; Reset invalidates everything
// handed out and recycles the storage. The slabs grow to the previous
// cycle's peak demand on Reset, so once a compute cycle's shape mix is
// stable — e.g. the steady-state denoising step — every Get is served from
// the slabs and the cycle performs zero heap allocations.
//
// All methods are nil-receiver-safe: a nil *Arena degrades to fresh heap
// allocations, so code can thread an optional workspace without branching.
//
// Ownership rules (see DESIGN.md §kernels): the producer of a cycle owns
// its arena and calls Reset exactly once per cycle; matrices returned by
// Get/Wrap/Clone are valid only until that Reset, and anything retained
// beyond it (cached activations, returned results) must be deep-copied
// with Matrix.Clone first. An Arena is not safe for concurrent use.
type Arena struct {
	slab  []float32
	off   int // floats handed out from slab this cycle
	want  int // total floats demanded this cycle (incl. overflow)
	hdrs  []Matrix
	hoff  int // headers handed out from hdrs this cycle
	hwant int // total headers demanded this cycle
}

// NewArena returns an empty arena; its slabs are sized by the first Reset
// after a warm-up cycle.
func NewArena() *Arena { return &Arena{} }

// Get returns a zeroed r×c matrix backed by the arena, falling back to a
// fresh heap allocation when the slab is exhausted (or the receiver nil).
func (a *Arena) Get(r, c int) *Matrix {
	if a == nil {
		return New(r, c)
	}
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %d×%d", r, c))
	}
	n := r * c
	a.want += n
	var data []float32
	if a.off+n <= len(a.slab) {
		data = a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		clear(data)
	} else {
		data = make([]float32, n)
	}
	m := a.header()
	*m = Matrix{R: r, C: c, Data: data}
	return m
}

// Wrap returns an r×c matrix header over data without copying, using an
// arena-backed header. It panics if len(data) != r*c.
func (a *Arena) Wrap(r, c int, data []float32) *Matrix {
	if a == nil {
		return FromSlice(r, c, data)
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: data length %d != %d×%d", len(data), r, c))
	}
	m := a.header()
	*m = Matrix{R: r, C: c, Data: data}
	return m
}

// Clone returns an arena-backed deep copy of m.
func (a *Arena) Clone(m *Matrix) *Matrix {
	out := a.Get(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// header returns the next header slot, falling back to the heap when the
// header slab is exhausted.
func (a *Arena) header() *Matrix {
	a.hwant++
	if a.hoff < len(a.hdrs) {
		m := &a.hdrs[a.hoff]
		a.hoff++
		return m
	}
	return new(Matrix)
}

// Reset starts a new cycle: it invalidates every matrix handed out since
// the previous Reset and grows the slabs to the finished cycle's demand so
// the next cycle is served allocation-free.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	if a.want > len(a.slab) {
		a.slab = make([]float32, a.want)
	}
	if a.hwant > len(a.hdrs) {
		a.hdrs = make([]Matrix, a.hwant)
	}
	a.off, a.hoff, a.want, a.hwant = 0, 0, 0, 0
}
