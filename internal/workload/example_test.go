package workload_test

import (
	"fmt"
	"log"

	"flashps/internal/workload"
)

// ExampleGenerate synthesizes a Poisson trace with production-like mask
// ratios and Zipf-popular templates (§6.1).
func ExampleGenerate() {
	reqs, err := workload.Generate(workload.TraceConfig{
		N: 1000, RPS: 2, Dist: workload.ProductionTrace,
		Templates: 20, ZipfS: 1.1, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := workload.Summarize(reqs)
	fmt.Printf("%d requests over %.0fs, %d templates, mean mask ratio %.2f\n",
		s.Requests, s.Duration, s.Templates, s.MeanRatio)
	// Output:
	// 1000 requests over 483s, 20 templates, mean mask ratio 0.11
}
