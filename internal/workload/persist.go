package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteTrace serializes a request trace as indented JSON.
func WriteTrace(w io.Writer, reqs []Request) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(reqs); err != nil {
		return fmt.Errorf("workload: write trace: %w", err)
	}
	return nil
}

// ReadTrace parses a JSON request trace and validates its invariants
// (non-decreasing arrivals, ratios in [0, 1], positive template ids).
func ReadTrace(r io.Reader) ([]Request, error) {
	var reqs []Request
	if err := json.NewDecoder(r).Decode(&reqs); err != nil {
		return nil, fmt.Errorf("workload: read trace: %w", err)
	}
	prev := -1.0
	for i, req := range reqs {
		switch {
		case req.Arrival < prev:
			return nil, fmt.Errorf("workload: trace request %d: arrival %g before previous %g", i, req.Arrival, prev)
		case req.MaskRatio < 0 || req.MaskRatio > 1:
			return nil, fmt.Errorf("workload: trace request %d: mask ratio %g out of [0,1]", i, req.MaskRatio)
		case req.Template == 0:
			return nil, fmt.Errorf("workload: trace request %d: zero template id", i)
		}
		prev = req.Arrival
	}
	return reqs, nil
}

// SaveTrace writes a trace to a file.
func SaveTrace(path string, reqs []Request) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: save trace: %w", err)
	}
	defer f.Close()
	return WriteTrace(f, reqs)
}

// LoadTrace reads a trace from a file.
func LoadTrace(path string) ([]Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: load trace: %w", err)
	}
	defer f.Close()
	return ReadTrace(f)
}

// Stats summarizes a trace.
type Stats struct {
	Requests    int
	Duration    float64
	MeanRPS     float64
	MeanRatio   float64
	Templates   int
	TopTemplate uint64
	TopShare    float64 // fraction of requests hitting the hottest template
}

// Summarize computes trace statistics.
func Summarize(reqs []Request) Stats {
	s := Stats{Requests: len(reqs)}
	if len(reqs) == 0 {
		return s
	}
	counts := map[uint64]int{}
	var ratioSum float64
	for _, r := range reqs {
		counts[r.Template]++
		ratioSum += r.MaskRatio
	}
	s.Duration = reqs[len(reqs)-1].Arrival
	if s.Duration > 0 {
		s.MeanRPS = float64(len(reqs)) / s.Duration
	}
	s.MeanRatio = ratioSum / float64(len(reqs))
	s.Templates = len(counts)
	best := 0
	for id, c := range counts {
		if c > best || (c == best && id < s.TopTemplate) {
			best = c
			s.TopTemplate = id
		}
	}
	s.TopShare = float64(best) / float64(len(reqs))
	return s
}
