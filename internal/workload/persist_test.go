package workload

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func genTrace(t *testing.T) []Request {
	t.Helper()
	reqs, err := Generate(TraceConfig{
		N: 50, RPS: 2, Dist: PublicTrace, Templates: 5, ZipfS: 1.1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestTraceRoundTripBuffer(t *testing.T) {
	reqs := genTrace(t)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(back), len(reqs))
	}
	for i := range reqs {
		if back[i] != reqs[i] {
			t.Fatalf("request %d mutated: %+v vs %+v", i, back[i], reqs[i])
		}
	}
}

func TestTraceRoundTripFile(t *testing.T) {
	reqs := genTrace(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveTrace(path, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatal("file round trip lost requests")
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadTraceValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"bad json", "{", "read trace"},
		{"decreasing arrivals", `[{"ID":0,"Arrival":5,"Template":1,"MaskRatio":0.1},{"ID":1,"Arrival":2,"Template":1,"MaskRatio":0.1}]`, "before previous"},
		{"bad ratio", `[{"ID":0,"Arrival":1,"Template":1,"MaskRatio":1.5}]`, "out of [0,1]"},
		{"zero template", `[{"ID":0,"Arrival":1,"Template":0,"MaskRatio":0.5}]`, "zero template"},
	}
	for _, tc := range cases {
		_, err := ReadTrace(strings.NewReader(tc.json))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.Requests != 0 {
		t.Fatal("empty summary wrong")
	}
	reqs := []Request{
		{ID: 0, Arrival: 1, Template: 1, MaskRatio: 0.2},
		{ID: 1, Arrival: 2, Template: 1, MaskRatio: 0.4},
		{ID: 2, Arrival: 4, Template: 2, MaskRatio: 0.6},
	}
	s := Summarize(reqs)
	if s.Requests != 3 || s.Duration != 4 || s.Templates != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.TopTemplate != 1 || s.TopShare < 0.66 || s.TopShare > 0.67 {
		t.Fatalf("top template wrong: %+v", s)
	}
	if s.MeanRatio < 0.39 || s.MeanRatio > 0.41 {
		t.Fatalf("mean ratio = %g", s.MeanRatio)
	}
	if s.MeanRPS != 0.75 {
		t.Fatalf("mean rps = %g", s.MeanRPS)
	}
}
