// Package workload synthesizes the request traffic of the paper's
// evaluation (§6.1): Poisson arrivals with mask ratios drawn from
// distributions matched to the published trace statistics (Fig 3 — the
// production trace with mean ratio 0.11, the public trace [38] with mean
// 0.19, and the VITON-HD benchmark with mean 0.35) and template popularity
// following the heavy reuse observed in §2.2 (970 templates for 34M
// images, ≈35k reuses each).
package workload

import (
	"fmt"
	"math"

	"flashps/internal/tensor"
)

// MaskDist is a named mask-ratio distribution.
type MaskDist struct {
	Name string
	// Alpha, Beta parameterize a Beta(α, β) distribution over [0, 1],
	// whose mean is α/(α+β). Beta fits the traces' shape: most masks
	// small, a long tail of large ones.
	Alpha, Beta float64
	// Min clips tiny ratios: a mask always covers at least a few tokens.
	Min float64
}

// Distributions matched to the paper's published summary statistics.
var (
	// ProductionTrace matches the Alibaba 14-day trace: mean ratio 0.11.
	ProductionTrace = MaskDist{Name: "production", Alpha: 1.2, Beta: 9.7, Min: 0.01}
	// PublicTrace matches the public diffusion serving trace [38]:
	// mean ratio 0.19.
	PublicTrace = MaskDist{Name: "public", Alpha: 1.3, Beta: 5.54, Min: 0.01}
	// VITONTrace matches the VITON-HD virtual try-on benchmark:
	// mean ratio 0.35.
	VITONTrace = MaskDist{Name: "viton", Alpha: 2.8, Beta: 5.2, Min: 0.02}
)

// AllDists returns the three distributions in paper order.
func AllDists() []MaskDist { return []MaskDist{ProductionTrace, PublicTrace, VITONTrace} }

// Mean returns the analytic mean of the (unclipped) distribution.
func (d MaskDist) Mean() float64 { return d.Alpha / (d.Alpha + d.Beta) }

// Sample draws one mask ratio.
func (d MaskDist) Sample(rng *tensor.RNG) float64 {
	v := sampleBeta(rng, d.Alpha, d.Beta)
	if v < d.Min {
		v = d.Min
	}
	if v > 1 {
		v = 1
	}
	return v
}

// sampleBeta draws Beta(a, b) as Ga/(Ga+Gb) from two Gamma variates.
func sampleBeta(rng *tensor.RNG, a, b float64) float64 {
	x := sampleGamma(rng, a)
	y := sampleGamma(rng, b)
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}

// sampleGamma draws Gamma(shape, 1) via Marsaglia–Tsang, with the boost
// trick for shape < 1.
func sampleGamma(rng *tensor.RNG, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Request is one image-editing request in a synthetic trace.
type Request struct {
	ID        int
	Arrival   float64 // seconds since trace start
	Template  uint64  // template identifier (Zipf-popular)
	MaskRatio float64
}

// TraceConfig parameterizes synthetic trace generation.
type TraceConfig struct {
	// N is the number of requests.
	N int
	// RPS is the Poisson arrival rate (requests per second).
	RPS float64
	// Dist is the mask-ratio distribution.
	Dist MaskDist
	// Templates is the number of distinct templates; popularity is
	// Zipf(S)-distributed over them.
	Templates int
	// ZipfS is the Zipf exponent (≈1 reproduces the paper's heavy reuse).
	ZipfS float64
	// Seed makes the trace reproducible.
	Seed uint64
}

// Generate synthesizes a request trace.
func Generate(cfg TraceConfig) ([]Request, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: invalid request count %d", cfg.N)
	}
	if cfg.RPS <= 0 {
		return nil, fmt.Errorf("workload: invalid RPS %g", cfg.RPS)
	}
	if cfg.Templates <= 0 {
		return nil, fmt.Errorf("workload: invalid template count %d", cfg.Templates)
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0x7ACE)
	zipf := newZipf(cfg.Templates, cfg.ZipfS)
	reqs := make([]Request, cfg.N)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / cfg.RPS
		reqs[i] = Request{
			ID:        i,
			Arrival:   t,
			Template:  uint64(zipf.sample(rng)) + 1,
			MaskRatio: cfg.Dist.Sample(rng),
		}
	}
	return reqs, nil
}

// zipf samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s via the
// precomputed CDF.
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	if s <= 0 {
		s = 1
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{cdf: cdf}
}

func (z *zipf) sample(rng *tensor.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
