package workload

import (
	"math"
	"testing"

	"flashps/internal/tensor"
)

// Fig 3 anchor: the sampled mean mask ratios must match the paper's trace
// statistics (0.11 production, 0.19 public, 0.35 VITON) within ±0.03.
func TestAnchorMaskDistMeans(t *testing.T) {
	cases := []struct {
		dist MaskDist
		want float64
	}{
		{ProductionTrace, 0.11},
		{PublicTrace, 0.19},
		{VITONTrace, 0.35},
	}
	rng := tensor.NewRNG(1)
	for _, tc := range cases {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			v := tc.dist.Sample(rng)
			if v < 0 || v > 1 {
				t.Fatalf("%s: ratio %g out of [0,1]", tc.dist.Name, v)
			}
			sum += v
		}
		mean := sum / n
		if math.Abs(mean-tc.want) > 0.03 {
			t.Fatalf("%s: sampled mean %g want ≈%g", tc.dist.Name, mean, tc.want)
		}
		if math.Abs(tc.dist.Mean()-tc.want) > 0.03 {
			t.Fatalf("%s: analytic mean %g want ≈%g", tc.dist.Name, tc.dist.Mean(), tc.want)
		}
	}
}

func TestMaskDistVariation(t *testing.T) {
	// §2.2: individual ratios vary significantly. Check dispersion.
	rng := tensor.NewRNG(2)
	var lo, hi int
	for i := 0; i < 20000; i++ {
		v := ProductionTrace.Sample(rng)
		if v < 0.05 {
			lo++
		}
		if v > 0.3 {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatalf("distribution lacks spread: %d tiny, %d large", lo, hi)
	}
}

func TestMaskDistMinClip(t *testing.T) {
	rng := tensor.NewRNG(3)
	for i := 0; i < 5000; i++ {
		if v := ProductionTrace.Sample(rng); v < ProductionTrace.Min {
			t.Fatalf("ratio %g below Min %g", v, ProductionTrace.Min)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	base := TraceConfig{N: 10, RPS: 1, Dist: PublicTrace, Templates: 5, ZipfS: 1, Seed: 1}
	if _, err := Generate(base); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.N = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("N=0 accepted")
	}
	bad = base
	bad.RPS = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("RPS=0 accepted")
	}
	bad = base
	bad.Templates = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("Templates=0 accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TraceConfig{N: 100, RPS: 2, Dist: PublicTrace, Templates: 10, ZipfS: 1, Seed: 7}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed traces differ")
		}
	}
	cfg.Seed = 8
	c, _ := Generate(cfg)
	same := true
	for i := range a {
		if a[i].Arrival != c[i].Arrival {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds give identical traces")
	}
}

func TestGeneratePoissonRate(t *testing.T) {
	cfg := TraceConfig{N: 20000, RPS: 4, Dist: PublicTrace, Templates: 10, ZipfS: 1, Seed: 5}
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals strictly increasing with mean gap ≈ 1/RPS.
	prev := 0.0
	var sumGap float64
	for _, r := range reqs {
		if r.Arrival <= prev {
			t.Fatal("arrivals not increasing")
		}
		sumGap += r.Arrival - prev
		prev = r.Arrival
	}
	meanGap := sumGap / float64(len(reqs))
	if math.Abs(meanGap-0.25) > 0.01 {
		t.Fatalf("mean inter-arrival = %g, want ≈0.25", meanGap)
	}
}

func TestGenerateZipfPopularity(t *testing.T) {
	// §2.2 anchor: templates are heavily reused — the most popular
	// template must dominate.
	cfg := TraceConfig{N: 20000, RPS: 1, Dist: ProductionTrace, Templates: 100, ZipfS: 1.1, Seed: 9}
	reqs, _ := Generate(cfg)
	counts := make(map[uint64]int)
	for _, r := range reqs {
		if r.Template < 1 || r.Template > 100 {
			t.Fatalf("template id %d out of range", r.Template)
		}
		counts[r.Template]++
	}
	if counts[1] <= counts[50]*5 {
		t.Fatalf("Zipf head not dominant: top=%d rank50=%d", counts[1], counts[50])
	}
}

func TestZipfDefaultExponent(t *testing.T) {
	// ZipfS ≤ 0 falls back to 1 rather than panicking.
	cfg := TraceConfig{N: 100, RPS: 1, Dist: PublicTrace, Templates: 5, ZipfS: 0, Seed: 2}
	if _, err := Generate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGammaBetaSamplerMoments(t *testing.T) {
	rng := tensor.NewRNG(11)
	// Beta(2, 6) has mean 0.25.
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += sampleBeta(rng, 2, 6)
	}
	if mean := sum / n; math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("Beta(2,6) mean = %g want 0.25", mean)
	}
	// Gamma with shape<1 branch.
	var gsum float64
	for i := 0; i < n; i++ {
		gsum += sampleGamma(rng, 0.5)
	}
	if mean := gsum / n; math.Abs(mean-0.5) > 0.03 {
		t.Fatalf("Gamma(0.5) mean = %g want 0.5", mean)
	}
}

func TestAllDists(t *testing.T) {
	ds := AllDists()
	if len(ds) != 3 || ds[0].Name != "production" {
		t.Fatalf("AllDists = %v", ds)
	}
}
